"""The canonical Argonne-like testbed: everything wired together.

Builds the full Sec. 2 world on one DES environment:

* topology — PicoProbe user machine → 1 Gbps site switch → 200 Gbps
  backbone → ALCF (Eagle DTN, Polaris);
* storage — the user machine's transfer directory and the Eagle store;
* services — auth, transfer (with both Globus-Connect endpoints),
  compute (Polaris endpoint behind the PBS scheduler), search (with the
  portal index), flows (with all three action providers);
* the instrument and a Gladier client for the operator identity.

:func:`build_testbed` returns a :class:`Testbed` handle exposing all of
it; campaigns, examples, and benches build on this one constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..auth import AccessPolicy, AuthClient, Identity, Token
from ..auth.identity import (
    COMPUTE_SCOPE,
    FLOWS_SCOPE,
    SEARCH_INGEST_SCOPE,
    SEARCH_QUERY_SCOPE,
    TRANSFER_SCOPE,
)
from ..compute import BatchScheduler, ComputeEndpoint, ComputeService
from ..flows import (
    ComputeActionProvider,
    ExponentialBackoff,
    FlowsService,
    GladierClient,
    SearchIngestActionProvider,
    TransferActionProvider,
)
from ..instrument import PicoProbe
from ..net import NetworkFabric, Topology
from ..obs import NULL_OBS, Observability
from ..rng import RngRegistry
from ..search import SearchIndex, SearchService
from ..sim import Environment
from ..storage import VirtualFS
from ..transfer import FaultPlan, NO_FAULTS, TransferEndpoint, TransferService
from .calibration import DEFAULT_CALIBRATION, Calibration

__all__ = ["Testbed", "build_testbed", "PICOPROBE_EP", "EAGLE_EP", "POLARIS_EP", "PORTAL_INDEX"]

PICOPROBE_EP = "picoprobe-user"
EAGLE_EP = "alcf-eagle"
POLARIS_EP = "alcf-polaris"
PORTAL_INDEX = "picoprobe-portal"


@dataclass
class Testbed:
    """Handles onto every component of the built world."""

    env: Environment
    rngs: RngRegistry
    calibration: Calibration
    topology: Topology
    fabric: NetworkFabric
    auth: AuthClient
    operator: Identity
    token: Token  # all scopes, for the operator's apps
    user_fs: VirtualFS
    eagle_fs: VirtualFS
    transfer: TransferService
    scheduler: BatchScheduler
    polaris: ComputeEndpoint
    compute: ComputeService
    search: SearchService
    portal_index: SearchIndex
    flows: FlowsService
    gladier: GladierClient
    instrument: PicoProbe
    obs: Any = NULL_OBS  # Observability bundle (NULL_OBS when disabled)


def build_testbed(
    env: Optional[Environment] = None,
    seed: int = 0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    fault_plan: FaultPlan = NO_FAULTS,
    operator_name: str = "operator",
    obs: Any = None,
    retry_policies: Optional[dict] = None,
) -> Testbed:
    """Construct the full testbed on ``env`` (a fresh one by default).

    Pass an :class:`~repro.obs.Observability` bundle as ``obs`` to
    thread one tracer + metrics registry through every service; by
    default tracing is off and every instrumentation point is a no-op.
    ``retry_policies`` maps action-provider names to
    :class:`~repro.flows.RetryPolicy` for the flow executor (chaos
    campaigns install theirs through this).
    """
    env = env or Environment()
    if obs is None:
        obs = NULL_OBS
    tracer, metrics = obs.tracer, obs.metrics
    rngs = RngRegistry(seed=seed)
    cal = calibration

    # -- network ------------------------------------------------------------
    topo = Topology()
    topo.add_node("picoprobe-user-machine")
    topo.add_node("site-switch", kind="switch")
    topo.add_node("anl-backbone", kind="switch")
    topo.add_node("eagle-dtn")
    topo.add_node("polaris-mom")
    topo.add_link(
        "picoprobe-user-machine", "site-switch", cal.site_switch_bps,
        latency_s=cal.wan_latency_s / 4,
    )
    topo.add_link(
        "site-switch", "anl-backbone", cal.backbone_bps, latency_s=cal.wan_latency_s / 4
    )
    topo.add_link(
        "anl-backbone", "eagle-dtn", cal.alcf_lan_bps, latency_s=cal.wan_latency_s / 4
    )
    topo.add_link(
        "anl-backbone", "polaris-mom", cal.alcf_lan_bps, latency_s=cal.wan_latency_s / 4
    )
    fabric = NetworkFabric(env, topo, tracer=tracer, metrics=metrics)

    # -- identities ----------------------------------------------------------
    auth = AuthClient()
    operator = auth.register_identity(operator_name, organization="ANL")
    token = auth.issue_token(
        operator,
        [
            TRANSFER_SCOPE,
            COMPUTE_SCOPE,
            SEARCH_INGEST_SCOPE,
            SEARCH_QUERY_SCOPE,
            FLOWS_SCOPE,
        ],
        now=env.now,
        lifetime=7 * 24 * 3600.0,
    )

    # -- storage + transfer -----------------------------------------------------
    user_fs = VirtualFS("picoprobe-user")
    eagle_fs = VirtualFS("eagle")
    transfer = TransferService(
        env,
        fabric,
        auth,
        rngs,
        api_latency_s=cal.transfer_api_latency_s,
        latency_sigma=cal.transfer_latency_sigma,
        throughput_sigma=cal.transfer_throughput_sigma,
        checksum_bytes_per_s=cal.checksum_bytes_per_s,
        fault_plan=fault_plan,
        tracer=tracer,
        metrics=metrics,
    )
    transfer.register_endpoint(
        TransferEndpoint(
            name=PICOPROBE_EP,
            host="picoprobe-user-machine",
            vfs=user_fs,
            policy=AccessPolicy().allow_write(operator),
            efficiency=cal.endpoint_efficiency,
            ramp_bytes=cal.endpoint_ramp_bytes,
            startup_latency_s=cal.transfer_startup_src_s,
        )
    )
    transfer.register_endpoint(
        TransferEndpoint(
            name=EAGLE_EP,
            host="eagle-dtn",
            vfs=eagle_fs,
            policy=AccessPolicy().allow_write(operator),
            efficiency=1.0,  # the DTN is not the bottleneck
            startup_latency_s=cal.transfer_startup_dst_s,
        )
    )

    # -- compute -------------------------------------------------------------------
    scheduler = BatchScheduler(
        env,
        n_nodes=cal.polaris_nodes,
        queue_median_s=cal.pbs_queue_median_s,
        queue_sigma=cal.pbs_queue_sigma,
        boot_median_s=cal.node_boot_median_s,
        boot_sigma=cal.node_boot_sigma,
        rngs=rngs,
        tracer=tracer,
        metrics=metrics,
    )
    polaris = ComputeEndpoint(
        env,
        POLARIS_EP,
        scheduler,
        env_cache_median_s=cal.env_cache_median_s,
        env_cache_sigma=cal.env_cache_sigma,
        idle_timeout_s=cal.node_idle_timeout_s,
        rngs=rngs,
        tracer=tracer,
        metrics=metrics,
    )
    compute = ComputeService(
        env,
        auth,
        rngs,
        api_latency_s=cal.compute_api_latency_s,
        latency_sigma=cal.compute_latency_sigma,
        tracer=tracer,
        metrics=metrics,
    )
    compute.register_endpoint(polaris)

    # -- search ------------------------------------------------------------------------
    search = SearchService(
        env,
        auth,
        rngs,
        ingest_latency_s=cal.search_ingest_latency_s,
        latency_sigma=cal.search_latency_sigma,
        metrics=metrics,
    )
    portal_index = search.create_index(PORTAL_INDEX)

    # -- flows ---------------------------------------------------------------------------
    flows = FlowsService(
        env,
        auth,
        rngs,
        transition_latency_s=cal.transition_latency_s,
        transition_sigma=cal.transition_sigma,
        poll_latency_s=cal.poll_latency_s,
        backoff=ExponentialBackoff(
            initial=cal.backoff_initial_s,
            factor=cal.backoff_factor,
            max_interval=cal.backoff_max_s,
        ),
        retry_policies=retry_policies,
        tracer=tracer,
        metrics=metrics,
    )
    flows.register_provider(TransferActionProvider(transfer, token))
    flows.register_provider(ComputeActionProvider(compute, token))
    flows.register_provider(
        SearchIngestActionProvider(env, search, token, tracer=tracer)
    )
    gladier = GladierClient(flows, token)

    instrument = PicoProbe(rngs, operator=operator_name)

    return Testbed(
        env=env,
        rngs=rngs,
        calibration=cal,
        topology=topo,
        fabric=fabric,
        auth=auth,
        operator=operator,
        token=token,
        user_fs=user_fs,
        eagle_fs=eagle_fs,
        transfer=transfer,
        scheduler=scheduler,
        polaris=polaris,
        compute=compute,
        search=search,
        portal_index=portal_index,
        flows=flows,
        gladier=gladier,
        instrument=instrument,
        obs=obs,
    )
