"""Calibrated parameters of the Argonne-like testbed.

These numbers are **inputs** inferred from the paper's own arithmetic
(Table 1, Fig. 4 and the Sec. 3.3 narrative), not fitted outputs; the
reproduced quantities — overhead percentages, min/mean/max spreads, run
counts, cold-start maxima — emerge from the mechanisms (exponential
polling backoff, cold/warm nodes, shared links).  Derivations:

* **Effective transfer throughput.**  Median active time minus analysis
  and publication implies ≈ 7.3 MB/s for 91 MB files and ≈ 10.4 MB/s for
  1200 MB files; solving the ramp model ``rate(n) = R·n/(n+s)`` gives
  R ≈ 11.1 MB/s (8.9% of the 1 Gbps switch) and s ≈ 86 MB.
* **Flow-service transition latency.**  Overhead not explained by
  polling detection lag, spread over the flow's 4 transitions.
* **Cold-start budget.**  Max-minus-min flow runtimes bound PBS queue +
  node boot + Python-environment caching at ≈ 85 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CalibrationError
from ..units import GB, MB, Gbps

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Every tunable of the testbed, in one auditable place."""

    # -- network (Sec. 2.1) --------------------------------------------------
    site_switch_bps: float = Gbps(1)  # user machines' 1 Gbps switch
    backbone_bps: float = Gbps(200)  # ANL backbone
    alcf_lan_bps: float = Gbps(200)  # ALCF internal fabric
    wan_latency_s: float = 0.002  # on-site round trips are sub-ms

    # -- transfer stack -----------------------------------------------------
    endpoint_efficiency: float = 0.089  # asymptotic share achieved (R)
    endpoint_ramp_bytes: float = MB(86)  # ramp scale (s)
    transfer_api_latency_s: float = 0.25
    transfer_startup_src_s: float = 1.0
    transfer_startup_dst_s: float = 0.5
    transfer_latency_sigma: float = 0.25
    transfer_throughput_sigma: float = 0.05
    checksum_bytes_per_s: float = 400e6

    # -- flows service --------------------------------------------------------
    transition_latency_s: float = 1.5
    transition_sigma: float = 0.35
    poll_latency_s: float = 0.15
    backoff_initial_s: float = 1.0  # "starts at 1 second
    backoff_factor: float = 2.0  # and doubles
    backoff_max_s: float = 600.0  # up to 10 minutes" (Sec. 3.3)

    # -- Polaris batch system ---------------------------------------------------
    polaris_nodes: int = 4
    pbs_queue_median_s: float = 15.0
    pbs_queue_sigma: float = 0.35
    node_boot_median_s: float = 20.0
    node_boot_sigma: float = 0.2
    env_cache_median_s: float = 30.0  # first-task Python library caching
    env_cache_sigma: float = 0.2
    node_idle_timeout_s: float = 900.0  # warm-node retention

    # -- compute service ---------------------------------------------------------
    compute_api_latency_s: float = 0.2
    compute_latency_sigma: float = 0.3

    # -- analysis cost models ---------------------------------------------------
    #: hyperspectral: load + reductions + metadata, per byte of cube.
    hyperspectral_analysis_s_per_gb: float = 33.0  # 91 MB → ≈ 3.0 s
    hyperspectral_analysis_floor_s: float = 0.5
    #: spatiotemporal: fp64→uint8 cast + encode dominates (Sec. 3.3),
    #: plus per-frame detector inference.
    conversion_s_per_gb: float = 30.0  # 1.2 GB → ≈ 36 s
    inference_s_per_frame: float = 0.013  # 600 frames → ≈ 7.8 s
    analysis_jitter_sigma: float = 0.12

    # -- publication ----------------------------------------------------------------
    search_ingest_latency_s: float = 0.8
    search_latency_sigma: float = 0.3

    def __post_init__(self) -> None:
        positive = (
            "site_switch_bps",
            "backbone_bps",
            "alcf_lan_bps",
            "endpoint_efficiency",
            "backoff_initial_s",
            "backoff_factor",
            "backoff_max_s",
            "polaris_nodes",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise CalibrationError(f"{name} must be positive")
        if self.endpoint_efficiency > 1.0:
            raise CalibrationError("endpoint_efficiency must be <= 1")
        if self.backoff_max_s < self.backoff_initial_s:
            raise CalibrationError("backoff_max_s must be >= backoff_initial_s")

    # -- derived quantities used in docs/benches ------------------------------
    def effective_rate_bps(self, nbytes: float) -> float:
        """Calibrated per-task throughput for an uncontended transfer."""
        share = min(self.site_switch_bps, self.backbone_bps, self.alcf_lan_bps)
        frac = self.endpoint_efficiency * nbytes / (nbytes + self.endpoint_ramp_bytes)
        return share * frac

    def cold_start_budget_s(self) -> float:
        """Median extra latency the first flow pays on a fresh node."""
        return (
            self.pbs_queue_median_s
            + self.node_boot_median_s
            + self.env_cache_median_s
        )


DEFAULT_CALIBRATION = Calibration()
