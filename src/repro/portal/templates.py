"""Minimal HTML templating for the data portal (no external deps).

Escapes all interpolated content; layout mirrors a Django Globus Portal
Framework site: a header, a search/facet sidebar, and record pages with
plots and a metadata table.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["escape", "page", "table", "definition_list", "link_list"]


def escape(value: object) -> str:
    return (
        str(value)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: Helvetica, Arial, sans-serif; margin: 0; color: #222; }}
header {{ background: #1a3e5c; color: white; padding: 14px 28px; }}
header h1 {{ margin: 0; font-size: 20px; }}
main {{ display: flex; gap: 24px; padding: 20px 28px; }}
nav {{ min-width: 220px; }}
section {{ flex: 1; }}
table {{ border-collapse: collapse; margin: 12px 0; }}
td, th {{ border: 1px solid #ccc; padding: 5px 10px; font-size: 13px; text-align: left; }}
th {{ background: #eef3f7; }}
.facet {{ margin-bottom: 14px; }}
.facet h3 {{ margin: 4px 0; font-size: 13px; text-transform: uppercase; color: #555; }}
.facet li {{ font-size: 13px; list-style: none; }}
.facet ul {{ padding-left: 8px; margin: 2px 0; }}
figure {{ margin: 12px 0; }}
figcaption {{ font-size: 12px; color: #666; }}
a {{ color: #1a5c8a; }}
.record-list li {{ margin: 6px 0; font-size: 14px; }}
</style>
</head>
<body>
<header><h1>{header}</h1></header>
<main>
<nav>{sidebar}</nav>
<section>{body}</section>
</main>
</body>
</html>
"""


def page(title: str, header: str, body: str, sidebar: str = "") -> str:
    """Assemble a full page.  ``body``/``sidebar`` are trusted HTML built
    by this module's helpers; ``title``/``header`` are escaped."""
    return _PAGE.format(
        title=escape(title), header=escape(header), body=body, sidebar=sidebar
    )


def table(rows: Iterable[tuple[object, object]], headers: tuple[str, str] = ("Field", "Value")) -> str:
    """Two-column table with escaped cells (the Fig. 2C metadata table)."""
    cells = "".join(
        f"<tr><td>{escape(k)}</td><td>{escape(v)}</td></tr>" for k, v in rows
    )
    return (
        f"<table><tr><th>{escape(headers[0])}</th><th>{escape(headers[1])}</th></tr>"
        f"{cells}</table>"
    )


def definition_list(items: Iterable[tuple[object, object]]) -> str:
    return (
        "<dl>"
        + "".join(f"<dt>{escape(k)}</dt><dd>{escape(v)}</dd>" for k, v in items)
        + "</dl>"
    )


def link_list(links: Iterable[tuple[str, str]], css_class: str = "record-list") -> str:
    """``[(href, label), ...]`` — hrefs are attribute-escaped."""
    return (
        f"<ul class='{css_class}'>"
        + "".join(
            f"<li><a href='{escape(href)}'>{escape(label)}</a></li>"
            for href, label in links
        )
        + "</ul>"
    )
