"""DGPF-style data portal: static HTML over the search index, rendering
record pages (plots + metadata tables) and a faceted experiment listing."""

from .portal import Portal
from .templates import escape, page, table

__all__ = ["Portal", "escape", "page", "table"]
