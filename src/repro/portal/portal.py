"""The DGPF-style data portal: static pages over a search index.

Researchers "search their experimental data and results by the time and
date of the associated experiment" (Sec. 2.2.3) and view per-record
pages like Fig. 2: (A) the intensity image, (B) the spectrum, (C) the
metadata table.  :class:`Portal` renders an index page (with facet
counts and a date-window listing) plus one page per visible record, all
as self-contained HTML.

Records may carry inline plots under ``content["plots"]`` — a mapping of
plot name → SVG markup (produced by :mod:`repro.viz`) — which are
embedded directly into the record page.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from ..auth import Identity
from ..errors import SearchError
from ..search import FieldFilter, SearchIndex
from . import templates as T

__all__ = ["Portal"]

#: Fields offered as facets on the index page.
DEFAULT_FACETS = ("experiment.signal_type", "subjects")


class Portal:
    """Static-site generator over a :class:`~repro.search.SearchIndex`."""

    def __init__(
        self,
        index: SearchIndex,
        title: str = "Dynamic PicoProbe Data Portal",
        facets: tuple[str, ...] = DEFAULT_FACETS,
    ) -> None:
        self.index = index
        self.title = title
        self.facets = facets

    # -- page rendering -----------------------------------------------------
    def render_index(
        self,
        identity: Optional[Identity] = None,
        date_range: Optional[tuple[str, str]] = None,
        q: Optional[str] = None,
        limit: int = 100,
    ) -> str:
        """The landing page: record listing + facet sidebar."""
        filters = []
        if date_range is not None:
            filters.append(FieldFilter("dates.created", "between", tuple(date_range)))
        results = self.index.query(
            q=q,
            filters=filters,
            identity=identity,
            limit=limit,
            facet_fields=self.facets,
        )
        links = []
        for hit in results.hits:
            label = hit.content.get("title", hit.subject)
            created = self._dig(hit.content, "dates.created") or ""
            links.append(
                (f"records/{self._slug(hit.subject)}.html", f"{label} — {created}")
            )
        body = (
            f"<h2>Experiments ({results.total_matched})</h2>"
            + (T.link_list(links) if links else "<p>No records visible.</p>")
        )
        sidebar = self._facet_sidebar(results.facets)
        return T.page(self.title, self.title, body, sidebar)

    def render_record(self, subject: str, identity: Optional[Identity] = None) -> str:
        """One experiment's page: plots + metadata table (Fig. 2)."""
        entry = self.index.get(subject, identity=identity)
        content = entry.content
        parts = [f"<h2>{T.escape(content.get('title', subject))}</h2>"]

        plots = content.get("plots", {})
        if isinstance(plots, dict):
            for name, svg in plots.items():
                if isinstance(svg, str) and svg.lstrip().startswith("<svg"):
                    parts.append(
                        f"<figure>{svg}<figcaption>{T.escape(name)}</figcaption></figure>"
                    )

        rows = self._metadata_rows(content)
        parts.append("<h3>Experiment metadata</h3>")
        parts.append(T.table(rows))
        back = "<p><a href='../index.html'>&larr; all experiments</a></p>"
        return T.page(
            f"{content.get('title', subject)} — {self.title}",
            self.title,
            back + "".join(parts),
        )

    # -- site build ------------------------------------------------------------
    def build(
        self,
        output_dir: "str | os.PathLike",
        identity: Optional[Identity] = None,
    ) -> list[str]:
        """Write index.html + records/*.html; returns written paths."""
        out = os.fspath(output_dir)
        os.makedirs(os.path.join(out, "records"), exist_ok=True)
        written = []
        index_path = os.path.join(out, "index.html")
        with open(index_path, "w", encoding="utf-8") as fh:
            fh.write(self.render_index(identity=identity))
        written.append(index_path)
        results = self.index.query(identity=identity, limit=10_000)
        for hit in results.hits:
            path = os.path.join(out, "records", f"{self._slug(hit.subject)}.html")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(self.render_record(hit.subject, identity=identity))
            written.append(path)
        return written

    # -- helpers ------------------------------------------------------------------
    @staticmethod
    def _slug(subject: str) -> str:
        return "".join(c if c.isalnum() or c in "-_" else "-" for c in subject)

    @staticmethod
    def _dig(doc: dict, path: str) -> Any:
        node: Any = doc
        for part in path.split("."):
            if isinstance(node, dict) and part in node:
                node = node[part]
            else:
                return None
        return node

    def _facet_sidebar(self, facets: dict[str, dict[str, int]]) -> str:
        blocks = []
        for field, counts in facets.items():
            if not counts:
                continue
            items = "".join(
                f"<li>{T.escape(v)} ({n})</li>"
                for v, n in sorted(counts.items(), key=lambda kv: -kv[1])
            )
            blocks.append(
                f"<div class='facet'><h3>{T.escape(field)}</h3><ul>{items}</ul></div>"
            )
        return "".join(blocks)

    def _metadata_rows(self, content: dict[str, Any]) -> list[tuple[str, Any]]:
        """Flatten the interesting metadata into (field, value) rows, the
        way Fig. 2C lists microscope settings and sample composition."""
        rows: list[tuple[str, Any]] = []
        exp = content.get("experiment", {})
        order = (
            ("Acquisition id", exp.get("acquisition_id")),
            ("Acquired at", self._dig(content, "dates.created")),
            ("Operator", exp.get("operator")),
            ("Signal type", exp.get("signal_type")),
            ("Tensor shape", exp.get("shape")),
            ("Instrument", self._dig(exp, "microscope.instrument")),
            ("Beam energy (keV)", self._dig(exp, "microscope.beam_energy_kev")),
            ("Magnification", self._dig(exp, "microscope.magnification")),
            ("Stage x (um)", self._dig(exp, "microscope.stage.x_um")),
            ("Stage y (um)", self._dig(exp, "microscope.stage.y_um")),
            ("Stage tilt alpha (deg)", self._dig(exp, "microscope.stage.alpha_deg")),
            ("Detectors", ", ".join(
                d.get("name", "?") for d in self._dig(exp, "microscope.detectors") or []
            ) or None),
            ("Sample", self._dig(exp, "sample.name")),
            ("Elements", ", ".join(self._dig(exp, "sample.elements") or []) or None),
            ("Software version", exp.get("software_version")),
        )
        for k, v in order:
            if v is not None and v != "":
                rows.append((k, v))
        if not rows:
            rows.append(("Identifier", content.get("identifier", "?")))
        return rows
