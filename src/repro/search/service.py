"""Authenticated, timed facade over :class:`SearchIndex`.

The flows' "Data Publication" step talks to this service: ingest
requires the ingest scope, queries the query scope, and each call
charges a cloud API latency so publication time shows up in the Fig. 4
breakdown ("a light-weight action ... performed on a Polaris login
node").
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..auth import ScopeAuthorizer, Token
from ..auth.identity import SEARCH_INGEST_SCOPE, SEARCH_QUERY_SCOPE, AuthClient
from ..obs.metrics import NULL_METRICS
from ..rng import RngRegistry, lognormal_from_median
from ..sim import Environment
from .index import FieldFilter, SearchIndex, SearchResults

__all__ = ["SearchService"]


class SearchService:
    """One Globus-Search-style tenant holding named indices."""

    def __init__(
        self,
        env: Environment,
        auth: AuthClient,
        rngs: Optional[RngRegistry] = None,
        ingest_latency_s: float = 0.8,
        query_latency_s: float = 0.15,
        latency_sigma: float = 0.3,
        metrics: Any = None,
    ) -> None:
        self.env = env
        self._ingest_auth = ScopeAuthorizer(auth, SEARCH_INGEST_SCOPE)
        self._query_auth = ScopeAuthorizer(auth, SEARCH_QUERY_SCOPE)
        self.rngs = rngs or RngRegistry(seed=0)
        self.ingest_latency_s = float(ingest_latency_s)
        self.query_latency_s = float(query_latency_s)
        self.latency_sigma = float(latency_sigma)
        m = metrics if metrics is not None else NULL_METRICS
        self._m_ingests = m.counter("search.ingests")
        self._m_queries = m.counter("search.queries")
        #: Chaos hook: a duck-typed outage gate (see
        #: :class:`repro.chaos.ServiceGate`).  ``None`` means always up.
        self.gate: Any = None
        self._indices: dict[str, SearchIndex] = {}

    def create_index(self, name: str, validate: bool = True) -> SearchIndex:
        if name in self._indices:
            raise ValueError(f"index already exists: {name!r}")
        idx = SearchIndex(name, validate=validate)
        self._indices[name] = idx
        return idx

    def index(self, name: str) -> SearchIndex:
        try:
            return self._indices[name]
        except KeyError:
            raise ValueError(f"unknown index: {name!r}") from None

    def check_available(self) -> None:
        """Raise :class:`~repro.errors.ServiceUnavailable` when a chaos
        gate has the search API inside an outage window."""
        if self.gate is not None:
            self.gate.check(self.env.now)

    def _charge(self, median: float):
        rng = self.rngs.stream("search.latency")
        return self.env.timeout(
            lognormal_from_median(rng, median, self.latency_sigma)
        )

    # -- DES-timed operations (use inside processes) -------------------------
    def ingest(
        self,
        token: Token,
        index: str,
        subject: str,
        content: dict[str, Any],
        visible_to: Iterable[str] = ("public",),
    ):
        """DES sub-process: authenticated ingest with API latency.

        Use as ``entry = yield from service.ingest(...)``.
        """
        self.check_available()
        self._ingest_auth.authorize(token, self.env.now)
        idx = self.index(index)
        yield self._charge(self.ingest_latency_s)
        self._m_ingests.inc()
        return idx.ingest(subject, content, visible_to, now=self.env.now)

    def query(
        self,
        token: Token,
        index: str,
        q: Optional[str] = None,
        filters: Iterable[FieldFilter] = (),
        limit: int = 10,
        offset: int = 0,
        facet_fields: Iterable[str] = (),
    ):
        """DES sub-process: authenticated query with API latency.

        Use as ``results = yield from service.query(...)``.
        """
        identity = self._query_auth.authorize(token, self.env.now)
        idx = self.index(index)
        yield self._charge(self.query_latency_s)
        self._m_queries.inc()
        return idx.query(
            q=q,
            filters=filters,
            identity=identity,
            limit=limit,
            offset=offset,
            facet_fields=facet_fields,
        )

    # -- immediate variants (no simulated latency; tooling/portal use) --------
    def query_now(
        self,
        token: Token,
        index: str,
        **kwargs: Any,
    ) -> SearchResults:
        identity = self._query_auth.authorize(token, self.env.now)
        return self.index(index).query(identity=identity, **kwargs)
