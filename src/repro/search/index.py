"""In-memory search index: free text + filters + facets + visibility.

A faithful miniature of Globus Search's GMETA model: records are
(subject, content, visible_to) triples; queries combine a free-text
string (TF-IDF ranked over all textual content), structured field
filters on dotted paths, and facet requests; results are filtered by the
caller's identity against each record's ``visible_to`` list before
anything is scored.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..auth import Identity
from ..errors import SearchError
from .datacite import validate_datacite

__all__ = ["GmetaEntry", "FieldFilter", "SearchHit", "SearchResults", "SearchIndex"]

_TOKEN = re.compile(r"[a-z0-9]+")

PUBLIC = "public"


def tokenize(text: str) -> list[str]:
    return _TOKEN.findall(text.lower())


def _walk_strings(value: Any) -> Iterable[str]:
    if isinstance(value, str):
        yield value
    elif isinstance(value, dict):
        for v in value.values():
            yield from _walk_strings(v)
    elif isinstance(value, (list, tuple)):
        for v in value:
            yield from _walk_strings(v)


def _dig(doc: dict, path: str) -> Any:
    node: Any = doc
    for part in path.split("."):
        if isinstance(node, dict) and part in node:
            node = node[part]
        else:
            return None
    return node


@dataclass(frozen=True)
class GmetaEntry:
    """One ingested record."""

    subject: str
    content: dict[str, Any]
    visible_to: tuple[str, ...]
    ingested_at: float


@dataclass(frozen=True)
class FieldFilter:
    """Structured constraint on a dotted content path.

    ``op``: ``"eq"``, ``"ne"``, ``"lt"``, ``"le"``, ``"gt"``, ``"ge"``,
    ``"contains"`` (substring / list membership), ``"between"``
    (inclusive pair).
    """

    path: str
    op: str
    value: Any

    _OPS = ("eq", "ne", "lt", "le", "gt", "ge", "contains", "between")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise SearchError(f"unknown filter op {self.op!r}; use one of {self._OPS}")

    def matches(self, content: dict[str, Any]) -> bool:
        got = _dig(content, self.path)
        if got is None:
            return False
        try:
            if self.op == "eq":
                return got == self.value
            if self.op == "ne":
                return got != self.value
            if self.op == "lt":
                return got < self.value
            if self.op == "le":
                return got <= self.value
            if self.op == "gt":
                return got > self.value
            if self.op == "ge":
                return got >= self.value
            if self.op == "contains":
                return self.value in got
            if self.op == "between":
                lo, hi = self.value
                return lo <= got <= hi
        except TypeError:
            return False
        return False


@dataclass(frozen=True)
class SearchHit:
    subject: str
    score: float
    content: dict[str, Any]


@dataclass(frozen=True)
class SearchResults:
    hits: tuple[SearchHit, ...]
    total_matched: int
    facets: dict[str, dict[str, int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.hits)

    def subjects(self) -> list[str]:
        return [h.subject for h in self.hits]


class SearchIndex:
    """Inverted-index search over DataCite-validated records."""

    def __init__(self, name: str, validate: bool = True) -> None:
        self.name = name
        self.validate = validate
        self._entries: dict[str, GmetaEntry] = {}
        self._postings: dict[str, dict[str, int]] = defaultdict(dict)  # term -> {subject: tf}

    # -- ingest ------------------------------------------------------------
    def ingest(
        self,
        subject: str,
        content: dict[str, Any],
        visible_to: Iterable[str] = (PUBLIC,),
        now: float = 0.0,
    ) -> GmetaEntry:
        """Add or replace the record for ``subject``."""
        if not subject or not isinstance(subject, str):
            raise SearchError(f"subject must be a non-empty string, got {subject!r}")
        if self.validate:
            validate_datacite(content)
        visible = tuple(visible_to)
        if not visible:
            raise SearchError("visible_to must not be empty (use 'public')")
        if subject in self._entries:
            self._remove_postings(subject)
        entry = GmetaEntry(
            subject=subject,
            content=content,
            visible_to=visible,
            ingested_at=float(now),
        )
        self._entries[subject] = entry
        counts = Counter()
        for text in _walk_strings(content):
            counts.update(tokenize(text))
        for term, tf in counts.items():
            self._postings[term][subject] = tf
        return entry

    def delete(self, subject: str) -> None:
        if subject not in self._entries:
            raise SearchError(f"unknown subject: {subject!r}")
        self._remove_postings(subject)
        del self._entries[subject]

    def _remove_postings(self, subject: str) -> None:
        for term in list(self._postings):
            self._postings[term].pop(subject, None)
            if not self._postings[term]:
                del self._postings[term]

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, subject: str, identity: Optional[Identity] = None) -> GmetaEntry:
        entry = self._entries.get(subject)
        if entry is None or not self._visible(entry, identity):
            raise SearchError(f"unknown subject: {subject!r}")
        return entry

    @staticmethod
    def _visible(entry: GmetaEntry, identity: Optional[Identity]) -> bool:
        if PUBLIC in entry.visible_to:
            return True
        return identity is not None and identity.urn in entry.visible_to

    def query(
        self,
        q: Optional[str] = None,
        filters: Iterable[FieldFilter] = (),
        identity: Optional[Identity] = None,
        limit: int = 10,
        offset: int = 0,
        facet_fields: Iterable[str] = (),
    ) -> SearchResults:
        """Run a query.

        Free-text terms are OR-combined and TF-IDF ranked; filters are
        AND-combined; visibility is enforced before scoring.  With no
        ``q``, all (visible, filtered) records match with score 0 and
        are returned newest-ingested first.
        """
        if limit < 0 or offset < 0:
            raise SearchError("limit/offset must be >= 0")
        filters = list(filters)
        candidates = [
            e
            for e in self._entries.values()
            if self._visible(e, identity)
            and all(f.matches(e.content) for f in filters)
        ]
        n_docs = max(len(self._entries), 1)
        if q:
            terms = tokenize(q)
            scores: dict[str, float] = defaultdict(float)
            for term in terms:
                postings = self._postings.get(term, {})
                if not postings:
                    continue
                idf = math.log(1.0 + n_docs / len(postings))
                for subject, tf in postings.items():
                    scores[subject] += (1.0 + math.log(tf)) * idf
            matched = [e for e in candidates if scores.get(e.subject, 0.0) > 0]
            matched.sort(key=lambda e: (-scores[e.subject], e.subject))
            hits = [
                SearchHit(e.subject, scores[e.subject], e.content) for e in matched
            ]
        else:
            matched = sorted(candidates, key=lambda e: (-e.ingested_at, e.subject))
            hits = [SearchHit(e.subject, 0.0, e.content) for e in matched]

        facets: dict[str, dict[str, int]] = {}
        for fld in facet_fields:
            counts: Counter = Counter()
            for h in hits:
                v = _dig(h.content, fld)
                if isinstance(v, (list, tuple)):
                    counts.update(str(x) for x in v)
                elif v is not None:
                    counts[str(v)] += 1
            facets[fld] = dict(counts)

        window = hits[offset : offset + limit]
        return SearchResults(
            hits=tuple(window), total_matched=len(hits), facets=facets
        )
