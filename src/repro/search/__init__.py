"""Globus-Search-style indexing substrate.

An inverted-index engine with TF-IDF free-text ranking, structured
filters, facets, DataCite-schema validation, and per-record visibility
ACLs — the "Data Publication" target of every flow (Sec. 2.2.3) and the
backing store of the portal.
"""

from .datacite import make_record, validate_datacite
from .index import (
    FieldFilter,
    GmetaEntry,
    SearchHit,
    SearchIndex,
    SearchResults,
)
from .service import SearchService

__all__ = [
    "SearchIndex",
    "SearchService",
    "SearchHit",
    "SearchResults",
    "GmetaEntry",
    "FieldFilter",
    "make_record",
    "validate_datacite",
]
