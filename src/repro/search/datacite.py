"""DataCite-flavoured metadata schema for published records.

The paper registers experiment metadata "defined by using an extensible
schema based on DataCite".  This module defines that schema — required
DataCite kernel fields (identifier, title, creator, publication year,
resource type) plus the extensible ``subjects`` / ``dates`` /
``descriptions`` blocks the portal renders — and validates documents
before ingest.
"""

from __future__ import annotations

from typing import Any

from ..errors import SchemaError

__all__ = ["validate_datacite", "make_record"]

REQUIRED_FIELDS = ("identifier", "title", "creators", "publication_year", "resource_type")


def validate_datacite(doc: dict[str, Any]) -> dict[str, Any]:
    """Validate (and return) a DataCite-style document.

    Raises :class:`SchemaError` naming every violated constraint.
    """
    if not isinstance(doc, dict):
        raise SchemaError(f"record must be a dict, got {type(doc).__name__}")
    problems = []
    for f in REQUIRED_FIELDS:
        if f not in doc:
            problems.append(f"missing required field {f!r}")
    if "identifier" in doc and not str(doc["identifier"]).strip():
        problems.append("identifier must be non-empty")
    if "creators" in doc:
        creators = doc["creators"]
        if not isinstance(creators, list) or not creators:
            problems.append("creators must be a non-empty list")
        elif not all(isinstance(c, str) and c.strip() for c in creators):
            problems.append("every creator must be a non-empty string")
    if "publication_year" in doc:
        y = doc["publication_year"]
        if not isinstance(y, int) or not 1900 <= y <= 2200:
            problems.append(f"publication_year must be a plausible int, got {y!r}")
    if "dates" in doc and not isinstance(doc["dates"], dict):
        problems.append("dates must be a dict of label -> ISO string")
    if "subjects" in doc:
        subj = doc["subjects"]
        if not isinstance(subj, list) or not all(isinstance(s, str) for s in subj):
            problems.append("subjects must be a list of strings")
    if problems:
        raise SchemaError(f"invalid DataCite record: {'; '.join(problems)}")
    return doc


def make_record(
    identifier: str,
    title: str,
    creators: list[str],
    publication_year: int,
    resource_type: str = "Dataset",
    **extensions: Any,
) -> dict[str, Any]:
    """Build and validate a record in one call.

    ``extensions`` become additional top-level fields (the "extensible"
    part of the schema: experiment metadata, plot paths, etc.).
    """
    doc: dict[str, Any] = {
        "identifier": identifier,
        "title": title,
        "creators": list(creators),
        "publication_year": publication_year,
        "resource_type": resource_type,
    }
    doc.update(extensions)
    return validate_datacite(doc)
