"""Sim-time metrics: counters, gauges, and time-bucketed histograms.

Instruments are registered by name at service construction and updated
on the hot path; like the tracer, every timestamp comes from
``Environment.now`` so a metrics dump is deterministic under a seed.
The disabled path (:data:`NULL_METRICS`) hands out shared no-op
instruments, so services may update unconditionally.

* :class:`Counter` — monotonically increasing total (polls issued,
  retries, bytes moved).
* :class:`Gauge` — instantaneous level sampled on every ``set``
  (active streams, node occupancy, queue depth); the full ``(t, v)``
  series is retained for export.
* :class:`Histogram` — values aggregated per fixed-width sim-time
  bucket (count/sum/min/max), e.g. per-minute queue-wait statistics.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from ..sim import Environment

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullInstrument",
    "NullMetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """Monotonic event count (optionally weighted)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Instantaneous level; retains the sampled time series."""

    __slots__ = ("name", "value", "samples", "_env")

    kind = "gauge"

    def __init__(self, name: str, env: Environment) -> None:
        self.name = name
        self.value = 0.0
        self.samples: list[tuple[float, float]] = []
        self._env = env

    def set(self, value: float) -> None:
        self.value = float(value)
        self.samples.append((self._env.now, self.value))

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class Histogram:
    """Values aggregated into fixed-width simulation-time buckets."""

    __slots__ = ("name", "bucket_s", "buckets", "_env")

    kind = "histogram"

    def __init__(self, name: str, env: Environment, bucket_s: float = 60.0) -> None:
        if bucket_s <= 0:
            raise SimulationError(f"histogram bucket width must be > 0, got {bucket_s}")
        self.name = name
        self.bucket_s = float(bucket_s)
        #: bucket index -> [count, sum, min, max]
        self.buckets: dict[int, list[float]] = {}
        self._env = env

    def observe(self, value: float) -> None:
        value = float(value)
        idx = int(self._env.now // self.bucket_s)
        agg = self.buckets.get(idx)
        if agg is None:
            self.buckets[idx] = [1.0, value, value, value]
        else:
            agg[0] += 1.0
            agg[1] += value
            agg[2] = min(agg[2], value)
            agg[3] = max(agg[3], value)

    @property
    def count(self) -> int:
        return int(sum(agg[0] for agg in self.buckets.values()))

    @property
    def total(self) -> float:
        return sum(agg[1] for agg in self.buckets.values())


class MetricsRegistry:
    """Named instruments bound to one environment.

    Lookups are idempotent: asking twice for the same name returns the
    same instrument (so layered services can share counters), but asking
    for the same name with a different kind is an error.
    """

    enabled = True

    def __init__(self, env: Environment, default_bucket_s: float = 60.0) -> None:
        self.env = env
        self.default_bucket_s = float(default_bucket_s)
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind: str, factory):
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
            return inst
        if inst.kind != kind:
            raise SimulationError(
                f"metric {name!r} already registered as {inst.kind}, not {kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, self.env))

    def histogram(self, name: str, bucket_s: Optional[float] = None) -> Histogram:
        width = self.default_bucket_s if bucket_s is None else bucket_s
        return self._get(name, "histogram", lambda: Histogram(name, self.env, width))

    def instruments(self) -> list:
        """All instruments sorted by name (stable export order)."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)


class NullInstrument:
    """Absorbs every update; shared by all disabled instruments."""

    __slots__ = ()

    kind = "null"
    name = ""
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every lookup returns the shared no-op."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name: str, bucket_s: Optional[float] = None) -> NullInstrument:
        return NULL_INSTRUMENT

    def instruments(self) -> list:
        return []

    def __len__(self) -> int:
        return 0


NULL_METRICS = NullMetricsRegistry()
