"""DES-native span tracing.

A *span* is a named interval of simulated time with optional attributes
and an optional parent, exactly the OpenTelemetry shape but timestamped
from ``Environment.now`` only — the tracer never reads the wall clock,
so enabling it adds zero nondeterminism and a traced campaign replays
byte-identically under a seed.

Two implementations share the interface:

* :class:`SimTracer` records every span in creation order (span ids are
  a deterministic counter, so exports are stable across runs);
* :class:`NullTracer` is the disabled path: :meth:`NullTracer.start`
  returns the singleton :data:`NULL_SPAN` whose methods are no-ops —
  no allocation, no bookkeeping, nothing retained.

Instrumented services accept ``tracer=None`` and fall back to
:data:`NULL_TRACER`, so tracing is free unless a campaign opts in.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..sim import Environment

__all__ = ["Span", "SimTracer", "NullSpan", "NullTracer", "NULL_SPAN", "NULL_TRACER"]


class Span:
    """One named interval of simulated time."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start", "end", "attrs")

    def __init__(
        self,
        tracer: "SimTracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: dict[str, Any] = {}

    # -- recording ---------------------------------------------------------
    def set(self, key: str, value: Any) -> "Span":
        """Attach an attribute (chainable)."""
        self.attrs[key] = value
        return self

    def finish(self) -> "Span":
        """Stamp the span's end at the current simulation time.

        Finishing twice keeps the first end time (spans are immutable
        once closed, so error paths may finish defensively).
        """
        if self.end is None:
            self.end = self.tracer.env.now
        return self

    # -- inspection --------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:
        state = f"{self.start:.6g}..{self.end:.6g}" if self.ended else f"{self.start:.6g}.."
        return f"<Span #{self.span_id} {self.name!r} {state}>"


class SimTracer:
    """Records spans against an environment's simulation clock."""

    enabled = True

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._spans: list[Span] = []
        self._ids = itertools.count(1)

    def start(self, name: str, parent: "Span | NullSpan | None" = None) -> Span:
        """Open a span at ``env.now``; ``parent`` may be a real span,
        :data:`NULL_SPAN`, or None (a root)."""
        parent_id = parent.span_id if isinstance(parent, Span) else None
        span = Span(self, next(self._ids), parent_id, name, self.env.now)
        self._spans.append(span)
        return span

    @property
    def spans(self) -> list[Span]:
        """All spans in creation (= span id) order."""
        return list(self._spans)

    def finished_spans(self) -> list[Span]:
        return [s for s in self._spans if s.ended]

    def __len__(self) -> int:
        return len(self._spans)


class NullSpan:
    """The do-nothing span: every operation returns immediately."""

    __slots__ = ()

    span_id = 0
    parent_id = None
    name = ""
    start = 0.0
    end = None
    attrs: dict[str, Any] = {}

    def set(self, key: str, value: Any) -> "NullSpan":
        return self

    def finish(self) -> "NullSpan":
        return self

    @property
    def ended(self) -> bool:
        # True so "close if still open" guards are no-ops on the
        # disabled path.
        return True

    @property
    def duration(self) -> Optional[float]:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullSpan>"


NULL_SPAN = NullSpan()


class NullTracer:
    """The disabled tracer: hands out :data:`NULL_SPAN`, keeps nothing."""

    __slots__ = ()

    enabled = False

    def start(self, name: str, parent: Any = None) -> NullSpan:
        return NULL_SPAN

    @property
    def spans(self) -> list[Span]:
        return []

    def finished_spans(self) -> list[Span]:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
