"""``repro.obs`` — deterministic, sim-clock-native observability.

The paper's entire evaluation is timing attribution (Table 1, Fig. 4's
Active/Overhead split); this subsystem makes those numbers *observable*
instead of hand-maintained:

* :mod:`~repro.obs.tracer` — parented spans timestamped from
  ``Environment.now`` (plus a free no-op path);
* :mod:`~repro.obs.metrics` — counters, gauges, and sim-time-bucketed
  histograms registered by services at construction;
* :mod:`~repro.obs.analysis` — per-step Active/Overhead and the
  critical path derived **from spans alone**, cross-checked against
  the ``StepRecord`` numbers by the tier-1 consistency gate;
* :mod:`~repro.obs.export` — JSON-lines, Chrome ``trace_event``, and
  metrics-CSV exporters behind ``python -m repro trace``.

:class:`Observability` bundles one tracer + one metrics registry for
threading through :func:`repro.testbed.build_testbed`.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .analysis import (
    ACTION_SPAN_NAMES,
    INTEGRITY_SPAN_NAMES,
    RunTrace,
    Segment,
    StepTrace,
    StreamSessionTrace,
    critical_path,
    derive_integrity_events,
    derive_runs,
    derive_stream_sessions,
    fig4_samples_from_traces,
    format_ingest_comparison,
    ingest_comparison,
    run_summary_stats,
)
from .export import metrics_to_csv, spans_to_chrome, spans_to_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_METRICS,
)
from .tracer import NullSpan, NullTracer, NULL_SPAN, NULL_TRACER, SimTracer, Span

__all__ = [
    "Observability",
    "NULL_OBS",
    # tracer
    "Span",
    "SimTracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    # analysis
    "ACTION_SPAN_NAMES",
    "INTEGRITY_SPAN_NAMES",
    "RunTrace",
    "StepTrace",
    "Segment",
    "StreamSessionTrace",
    "derive_integrity_events",
    "derive_runs",
    "derive_stream_sessions",
    "critical_path",
    "fig4_samples_from_traces",
    "ingest_comparison",
    "format_ingest_comparison",
    "run_summary_stats",
    # export
    "spans_to_jsonl",
    "spans_to_chrome",
    "metrics_to_csv",
]


class Observability:
    """One tracer + one metrics registry, bound to an environment."""

    enabled = True

    def __init__(self, env: Environment, metrics_bucket_s: float = 60.0) -> None:
        self.env: Optional[Environment] = env
        self.tracer = SimTracer(env)
        self.metrics = MetricsRegistry(env, default_bucket_s=metrics_bucket_s)


class _NullObservability:
    """Disabled bundle: shared no-op tracer and registry."""

    __slots__ = ()

    enabled = False
    env = None
    tracer = NULL_TRACER
    metrics = NULL_METRICS


NULL_OBS = _NullObservability()
