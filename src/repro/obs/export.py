"""Trace and metrics exporters.

Three formats, all deterministic under a seed (timestamps are sim-time,
ids are counters, iteration orders are explicit):

* JSON-lines — one span object per line, in span-id order; the
  greppable archival format.
* Chrome ``trace_event`` — a ``chrome://tracing`` /
  `Perfetto <https://ui.perfetto.dev>`_ -loadable JSON document; each
  flow run and each substrate service gets its own track.
* Metrics CSV — every instrument flattened to rows.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Optional, Sequence

from .metrics import MetricsRegistry
from .tracer import Span

__all__ = [
    "spans_to_jsonl",
    "spans_to_chrome",
    "metrics_to_csv",
]


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per span (unfinished spans have ``end: null``)."""
    lines = []
    for s in spans:
        lines.append(
            json.dumps(
                {
                    "id": s.span_id,
                    "parent": s.parent_id,
                    "name": s.name,
                    "start": s.start,
                    "end": s.end,
                    "attrs": s.attrs,
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _track_key(span: Span, by_id: dict[int, Span]) -> str:
    """The display track a span belongs to: its root lineage."""
    root = span
    while root.parent_id is not None:
        parent = by_id.get(root.parent_id)
        if parent is None:
            break
        root = parent
    if root.name == "flow.run":
        return f"run {root.attrs.get('run_id', root.span_id)}"
    # Service-side lineage: group by the service prefix.
    prefix, _, _ = root.name.partition(".")
    return prefix


def spans_to_chrome(spans: Sequence[Span]) -> str:
    """A Chrome ``trace_event`` JSON document (complete "X" events).

    Timestamps are microseconds of *simulated* time; only finished
    spans are emitted (an unfinished span has no duration to draw).
    """
    by_id = {s.span_id: s for s in spans}
    tids: dict[str, int] = {}
    events: list[dict] = []
    for s in spans:
        if not s.ended:
            continue
        track = _track_key(s, by_id)
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        args = dict(s.attrs)
        args["span_id"] = s.span_id
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": s.start * 1e6,
                "dur": (s.end - s.start) * 1e6,
                "name": s.name,
                "cat": s.name.partition(".")[0],
                "args": args,
            }
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.dumps(doc, sort_keys=True)


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Flatten every instrument to CSV rows.

    Columns: ``kind,name,time,value,count,sum,min,max``.  Counters emit
    one row (``value``); gauges one row per sample (``time,value``);
    histograms one row per sim-time bucket (``time`` is the bucket
    start, with ``count/sum/min/max``).
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["kind", "name", "time", "value", "count", "sum", "min", "max"])
    for inst in registry.instruments():
        if inst.kind == "counter":
            writer.writerow(["counter", inst.name, "", repr(inst.value), "", "", "", ""])
        elif inst.kind == "gauge":
            for t, v in inst.samples:
                writer.writerow(["gauge", inst.name, repr(t), repr(v), "", "", "", ""])
        elif inst.kind == "histogram":
            for idx in sorted(inst.buckets):
                count, total, vmin, vmax = inst.buckets[idx]
                writer.writerow(
                    [
                        "histogram",
                        inst.name,
                        repr(idx * inst.bucket_s),
                        "",
                        int(count),
                        repr(total),
                        repr(vmin),
                        repr(vmax),
                    ]
                )
    return buf.getvalue()
