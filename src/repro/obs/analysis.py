"""Trace analysis: the paper's timing decomposition derived from spans.

``core.stats`` computes Table 1 and Fig. 4 from hand-maintained
:class:`~repro.flows.run.StepRecord` fields.  This module computes the
same quantities **from spans alone** — a second, independent derivation
of the headline result, which the tier-1 consistency gate compares
against the record-based numbers.

The stitching convention: the flow executor emits ``flow.run`` root
spans with ``flow.step`` children carrying an ``action_id`` attribute;
each substrate service emits exactly one *action span*
(``transfer.task`` / ``compute.task`` / ``search.ingest``) carrying the
same ``action_id`` and covering precisely the interval its provider
reports as ``active_seconds``.  Per-step Active is therefore the action
span's duration, and Overhead is everything else inside the step span
(transition latency, submission latency, polling detection lag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .tracer import Span

__all__ = [
    "ACTION_SPAN_NAMES",
    "StepTrace",
    "RunTrace",
    "Segment",
    "StreamSessionTrace",
    "INTEGRITY_SPAN_NAMES",
    "derive_integrity_events",
    "derive_runs",
    "derive_stream_sessions",
    "critical_path",
    "fig4_samples_from_traces",
    "ingest_comparison",
    "format_ingest_comparison",
    "run_summary_stats",
]

#: Span names that mark a service-side action (the "Active" interval).
ACTION_SPAN_NAMES = frozenset({"transfer.task", "compute.task", "search.ingest"})

#: Instantaneous span name -> the integrity-event category it records.
INTEGRITY_SPAN_NAMES = {
    "chaos.corruption": "injections",
    "integrity.detect": "detections",
    "integrity.repair": "repairs",
    "integrity.quarantine": "quarantines",
    "integrity.publish": "publishes",
}


@dataclass(frozen=True)
class StepTrace:
    """One flow step reconstructed from its spans."""

    name: str
    provider: str
    action_id: str
    start: float
    end: float
    action_start: Optional[float]  # the matched action span, if any
    action_end: Optional[float]
    polls: int
    status: str
    #: Provider-reported active seconds recorded on the step span
    #: (fallback when no service-side action span matched — e.g. an
    #: uninstrumented third-party provider).
    reported_active: Optional[float] = None

    @property
    def observed_seconds(self) -> float:
        return self.end - self.start

    @property
    def active_seconds(self) -> float:
        if self.action_start is not None and self.action_end is not None:
            return self.action_end - self.action_start
        if self.reported_active is not None:
            return float(self.reported_active)
        return 0.0

    @property
    def overhead_seconds(self) -> float:
        return max(0.0, self.observed_seconds - self.active_seconds)


@dataclass(frozen=True)
class RunTrace:
    """One flow run reconstructed from its span tree."""

    run_id: str
    flow: str
    status: str
    start: float
    end: float
    steps: tuple[StepTrace, ...]

    @property
    def runtime_seconds(self) -> float:
        return self.end - self.start

    @property
    def active_seconds(self) -> float:
        return sum(s.active_seconds for s in self.steps)

    @property
    def overhead_seconds(self) -> float:
        return max(0.0, self.runtime_seconds - self.active_seconds)

    @property
    def overhead_fraction(self) -> float:
        rt = self.runtime_seconds
        return self.overhead_seconds / rt if rt > 0 else 0.0

    def step(self, name: str) -> StepTrace:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(name)


@dataclass(frozen=True)
class Segment:
    """One tile of a run's critical path."""

    kind: str  # "transition" | "submit" | "active" | "detect" | "overhead"
    name: str  # step (or run) the tile belongs to
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _action_index(spans: Sequence[Span]) -> dict[str, Span]:
    """Map action ids to their (finished) service-side action spans."""
    index: dict[str, Span] = {}
    for span in spans:
        if span.name in ACTION_SPAN_NAMES and span.ended:
            action_id = span.attrs.get("action_id")
            if action_id is not None:
                index[action_id] = span
    return index


def derive_runs(spans: Sequence[Span]) -> list[RunTrace]:
    """Reconstruct every finished flow run from a span list.

    Runs come back in root-span creation order (= start order); steps in
    step-span creation order.  Unfinished spans (a run still in flight
    when the campaign clock stopped) are skipped — exactly as
    ``core.stats`` skips non-terminal runs.
    """
    actions = _action_index(spans)
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.name == "flow.run":
            roots.append(span)
        elif span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    runs: list[RunTrace] = []
    for root in roots:
        if not root.ended:
            continue
        steps: list[StepTrace] = []
        for child in children.get(root.span_id, []):
            if child.name != "flow.step" or not child.ended:
                continue
            action_id = child.attrs.get("action_id", "")
            action = actions.get(action_id)
            steps.append(
                StepTrace(
                    name=child.attrs.get("state", ""),
                    provider=child.attrs.get("provider", ""),
                    action_id=action_id,
                    start=child.start,
                    end=child.end,
                    action_start=action.start if action is not None else None,
                    action_end=action.end if action is not None else None,
                    polls=int(child.attrs.get("polls", 0)),
                    status=child.attrs.get("status", ""),
                    reported_active=child.attrs.get("active_s"),
                )
            )
        runs.append(
            RunTrace(
                run_id=root.attrs.get("run_id", ""),
                flow=root.attrs.get("flow", ""),
                status=root.attrs.get("status", ""),
                start=root.start,
                end=root.end,
                steps=tuple(steps),
            )
        )
    return runs


def critical_path(run: RunTrace) -> list[Segment]:
    """Tile a run's timeline into its critical-path segments.

    Flows are sequential state machines, so the critical path *is* the
    timeline: per step, the pre-action wait (transition + submission
    latency), the action's active interval, and the post-action
    detection lag (the polling gap Fig. 4 attributes to orchestration);
    between and after steps, cloud transition time.  Segment durations
    sum exactly to the run's runtime.
    """
    segments: list[Segment] = []

    def tile(kind: str, name: str, start: float, end: float) -> None:
        if end > start:
            segments.append(Segment(kind, name, start, end))

    cursor = run.start
    for step in run.steps:
        tile("transition", step.name, cursor, step.start)
        if step.action_start is not None and step.action_end is not None:
            tile("submit", step.name, step.start, step.action_start)
            tile("active", step.name, step.action_start, step.action_end)
            tile("detect", step.name, step.action_end, step.end)
        else:
            tile("overhead", step.name, step.start, step.end)
        cursor = step.end
    tile("transition", run.run_id or run.flow, cursor, run.end)
    return segments


def fig4_samples_from_traces(
    runs: Sequence[RunTrace],
    step_labels: Sequence[tuple[str, str]],
) -> dict[str, list[float]]:
    """Span-derived Fig. 4 samples, shaped exactly like
    :func:`repro.core.stats.fig4_samples` (pass the same
    ``STEP_LABELS`` mapping of figure label -> flow state name)."""
    done = [r for r in runs if r.status == "SUCCEEDED"]
    out: dict[str, list[float]] = {label: [] for label, _ in step_labels}
    out["Active"] = []
    out["Overhead"] = []
    for r in done:
        for label, state in step_labels:
            try:
                out[label].append(r.step(state).active_seconds)
            except KeyError:
                pass
        out["Active"].append(r.active_seconds)
        out["Overhead"].append(r.overhead_seconds)
    return out


def derive_integrity_events(spans: Sequence[Span]) -> dict[str, list[Span]]:
    """Group the integrity-relevant instantaneous spans by category.

    The raw material of the integrity audit: every corruption the chaos
    layer *injected* (``chaos.corruption``), every verification failure
    the data plane *detected* (``integrity.detect``), every
    retransmit-driven *repair*, every dead-lettered *quarantine*, and
    every publish *receipt* — in span-creation (= sim-time) order.
    :func:`repro.integrity.audit_spans` joins these to prove zero
    silent acceptances.
    """
    out: dict[str, list[Span]] = {
        key: [] for key in INTEGRITY_SPAN_NAMES.values()
    }
    for span in spans:
        key = INTEGRITY_SPAN_NAMES.get(span.name)
        if key is not None and span.ended:
            out[key].append(span)
    return out


@dataclass(frozen=True)
class StreamSessionTrace:
    """One streaming-ingest session reconstructed from its spans.

    Stitching mirrors the flow convention: the app's ``stream.session``
    root and the publisher's ``stream.deliver`` root carry the same
    ``session_id`` attribute (the streaming analogue of ``action_id``);
    ``stream.analyze`` / ``stream.publish`` are children of the session
    root.
    """

    session_id: str
    path: str
    status: str
    start: float
    end: float
    deliver_start: Optional[float]
    deliver_end: Optional[float]
    analyze_start: Optional[float]
    analyze_end: Optional[float]
    publish_start: Optional[float]
    publish_end: Optional[float]
    renegotiations: int
    duplicates: int

    @property
    def end_to_end_seconds(self) -> float:
        return self.end - self.start

    @property
    def detection_to_analysis_seconds(self) -> Optional[float]:
        """File detection to analysis submission — the latency the fast
        path exists to cut (file mode pays staging + polling here)."""
        if self.analyze_start is None:
            return None
        return self.analyze_start - self.start


def derive_stream_sessions(spans: Sequence[Span]) -> list[StreamSessionTrace]:
    """Reconstruct every finished streaming session from a span list.

    Sessions come back in root-span creation order; sessions still in
    flight when the clock stopped are skipped, exactly as
    :func:`derive_runs` skips unfinished flow runs.
    """
    delivers: dict[str, Span] = {}
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        if span.name == "stream.session":
            roots.append(span)
        elif span.name == "stream.deliver" and span.ended:
            session_id = span.attrs.get("session_id")
            if session_id is not None:
                delivers[session_id] = span
        elif span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    sessions: list[StreamSessionTrace] = []
    for root in roots:
        if not root.ended:
            continue
        session_id = root.attrs.get("session_id", "")
        deliver = delivers.get(session_id)
        analyze: Optional[Span] = None
        publish: Optional[Span] = None
        for child in children.get(root.span_id, []):
            if not child.ended:
                continue
            if child.name == "stream.analyze":
                analyze = child
            elif child.name == "stream.publish":
                publish = child
        sessions.append(
            StreamSessionTrace(
                session_id=session_id,
                path=root.attrs.get("path", ""),
                status=root.attrs.get("status", ""),
                start=root.start,
                end=root.end,
                deliver_start=deliver.start if deliver is not None else None,
                deliver_end=deliver.end if deliver is not None else None,
                analyze_start=analyze.start if analyze is not None else None,
                analyze_end=analyze.end if analyze is not None else None,
                publish_start=publish.start if publish is not None else None,
                publish_end=publish.end if publish is not None else None,
                renegotiations=int(root.attrs.get("renegotiations", 0)),
                duplicates=int(root.attrs.get("duplicates", 0)),
            )
        )
    return sessions


def _latency_stats(values: Sequence[float]) -> dict[str, float]:
    if not values:
        return {"n": 0.0}
    arr = np.asarray(list(values))
    return {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }


def ingest_comparison(
    file_runs: Sequence[RunTrace],
    stream_sessions: Sequence[StreamSessionTrace],
    analyze_state: str = "AnalyzeData",
) -> dict[str, dict[str, dict[str, float]]]:
    """The Fig.-4-style file-vs-stream delivery-latency breakdown.

    Two quantities per ingest mode, over successful runs/sessions:
    **detection→analysis** (file creation to analysis submission — file
    mode pays staging transfer + flow transitions + polling detection
    lag here, stream mode only ``threshold_chunks`` of delivery) and
    **end-to-end** (creation to result published).  For file runs the
    analysis submission instant is the ``analyze_state`` step's action
    span start.
    """
    file_d2a: list[float] = []
    file_e2e: list[float] = []
    for r in file_runs:
        if r.status != "SUCCEEDED":
            continue
        file_e2e.append(r.runtime_seconds)
        try:
            step = r.step(analyze_state)
        except KeyError:
            continue
        if step.action_start is not None:
            file_d2a.append(step.action_start - r.start)
    stream_d2a: list[float] = []
    stream_e2e: list[float] = []
    for s in stream_sessions:
        if s.status != "PUBLISHED":
            continue
        stream_e2e.append(s.end_to_end_seconds)
        d2a = s.detection_to_analysis_seconds
        if d2a is not None:
            stream_d2a.append(d2a)
    return {
        "file": {
            "detection_to_analysis_s": _latency_stats(file_d2a),
            "end_to_end_s": _latency_stats(file_e2e),
        },
        "stream": {
            "detection_to_analysis_s": _latency_stats(stream_d2a),
            "end_to_end_s": _latency_stats(stream_e2e),
        },
    }


def format_ingest_comparison(
    comparison: dict[str, dict[str, dict[str, float]]]
) -> str:
    """Render :func:`ingest_comparison` as an aligned text table."""
    rows = [
        ("detection -> analysis", "detection_to_analysis_s"),
        ("end to end", "end_to_end_s"),
    ]
    lines = [
        f"{'latency (s)':<24}{'mode':<8}{'n':>5}{'mean':>10}"
        f"{'p50':>10}{'p95':>10}{'max':>10}"
    ]
    for label, key in rows:
        for mode in ("file", "stream"):
            st = comparison[mode][key]
            if not st.get("n"):
                lines.append(f"{label:<24}{mode:<8}{0:>5}{'-':>10}")
                continue
            lines.append(
                f"{label:<24}{mode:<8}{int(st['n']):>5}"
                f"{st['mean']:>10.2f}{st['p50']:>10.2f}"
                f"{st['p95']:>10.2f}{st['max']:>10.2f}"
            )
    return "\n".join(lines)


def run_summary_stats(runs: Sequence[RunTrace]) -> dict[str, float]:
    """Span-derived Table 1 timing aggregates over succeeded runs."""
    done = [r for r in runs if r.status == "SUCCEEDED"]
    if not done:
        raise ValueError("no succeeded runs in trace")
    runtimes = np.array([r.runtime_seconds for r in done])
    overheads = np.array([r.overhead_seconds for r in done])
    overhead_pcts = np.array([100 * r.overhead_fraction for r in done])
    return {
        "total_runs": float(len(done)),
        "min_runtime_s": float(runtimes.min()),
        "mean_runtime_s": float(runtimes.mean()),
        "max_runtime_s": float(runtimes.max()),
        "median_overhead_s": float(np.median(overheads)),
        "median_overhead_pct": float(np.median(overhead_pcts)),
    }
