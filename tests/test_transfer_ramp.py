"""Tests for the size-dependent endpoint throughput ramp."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import VirtualFS
from repro.transfer import TransferEndpoint
from repro.units import MB


def make_ep(eff=0.1, ramp=MB(50)):
    return TransferEndpoint(
        name="e", host="h", vfs=VirtualFS("v"), efficiency=eff, ramp_bytes=ramp
    )


def test_ramp_penalizes_small_files():
    ep = make_ep()
    small = ep.effective_efficiency(MB(10))
    large = ep.effective_efficiency(MB(1000))
    assert small < large < ep.efficiency


def test_no_ramp_means_flat_efficiency():
    ep = make_ep(ramp=0)
    assert ep.effective_efficiency(1) == 0.1
    assert ep.effective_efficiency(1e12) == 0.1


def test_ramp_half_point():
    ep = make_ep(eff=0.2, ramp=MB(100))
    # At n == ramp, exactly half the asymptotic efficiency.
    assert ep.effective_efficiency(MB(100)) == pytest.approx(0.1)


def test_negative_ramp_rejected():
    with pytest.raises(ValueError):
        make_ep(ramp=-1)


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=1, max_value=1e12),
    st.floats(min_value=1, max_value=1e12),
)
def test_ramp_monotone_property(a, b):
    """Effective efficiency is monotone non-decreasing in file size and
    bounded by the asymptotic efficiency."""
    ep = make_ep()
    ea, eb = ep.effective_efficiency(a), ep.effective_efficiency(b)
    if a <= b:
        assert ea <= eb + 1e-15
    assert 0 < ea <= ep.efficiency
