"""Tests for the EMD layer and metadata schema."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emd import (
    AcquisitionMetadata,
    DetectorConfig,
    EmdSignal,
    MicroscopeState,
    SampleInfo,
    StagePosition,
    default_dims,
    estimate_emd_size,
    iso_from_campaign_seconds,
    read_emd,
    write_emd,
)
from repro.errors import FormatError


def make_metadata(signal_type="hyperspectral", shape=(4, 5, 6)):
    return AcquisitionMetadata(
        acquisition_id="acq-0001",
        acquired_at=12.5,
        acquired_at_iso=iso_from_campaign_seconds(12.5),
        operator="alice",
        signal_type=signal_type,
        shape=shape,
        dtype="<f8",
        microscope=MicroscopeState(
            beam_energy_kev=300.0,
            magnification=2.1e6,
            stage=StagePosition(x_um=1.0, y_um=-2.0, alpha_deg=5.0),
            detectors=(
                DetectorConfig(name="XPAD", kind="xray-hyperspectral", solid_angle_sr=4.5),
            ),
        ),
        sample=SampleInfo(name="polyamide film", elements=("C", "N", "O", "Au")),
    )


def make_signal(signal_type="hyperspectral", shape=(4, 5, 6)):
    rng = np.random.default_rng(0)
    data = rng.random(shape)
    return EmdSignal(
        name="acq0",
        data=data,
        dims=default_dims(shape, signal_type),
        metadata=make_metadata(signal_type, shape),
    )


def test_write_read_roundtrip(tmp_path):
    sig = make_signal()
    path = tmp_path / "a.emd"
    write_emd(path, sig)
    with read_emd(path) as f:
        assert f.signal_names() == ["acq0"]
        h = f.signal()
        assert h.shape == (4, 5, 6)
        assert h.signal_type == "hyperspectral"
        np.testing.assert_array_equal(h.data.read(), sig.data)


def test_metadata_roundtrip(tmp_path):
    sig = make_signal()
    path = tmp_path / "a.emd"
    write_emd(path, sig)
    with read_emd(path) as f:
        md = f.metadata()
    assert md.acquisition_id == "acq-0001"
    assert md.operator == "alice"
    assert md.microscope.beam_energy_kev == 300.0
    assert md.microscope.stage.alpha_deg == 5.0
    assert md.microscope.detectors[0].name == "XPAD"
    assert md.sample.elements == ("C", "N", "O", "Au")
    assert md.shape == (4, 5, 6)


def test_dim_vectors_roundtrip(tmp_path):
    sig = make_signal("spatiotemporal", (3, 4, 4))
    path = tmp_path / "m.emd"
    write_emd(path, sig)
    with read_emd(path) as f:
        dims = f.signal().dims()
    assert [d.name for d in dims] == ["time", "height", "width"]
    assert [d.units for d in dims] == ["s", "px", "px"]
    np.testing.assert_array_equal(dims[0].values, np.arange(3.0))


def test_spatiotemporal_default_chunking_allows_frame_reads(tmp_path):
    sig = make_signal("spatiotemporal", (5, 8, 8))
    path = tmp_path / "m.emd"
    write_emd(path, sig)
    with read_emd(path) as f:
        h = f.signal()
        frame = h.data[2]
        np.testing.assert_array_equal(frame, sig.data[2])
        # chunked per frame
        assert h.data.chunks == (1, 8, 8)


def test_signal_dim_mismatch_rejected():
    with pytest.raises(FormatError):
        EmdSignal(
            name="x",
            data=np.zeros((2, 2)),
            dims=default_dims((4, 5, 6), "hyperspectral"),
            metadata=make_metadata(),
        )


def test_default_dims_validates_rank():
    with pytest.raises(FormatError):
        default_dims((4, 5), "hyperspectral")
    with pytest.raises(FormatError):
        default_dims((4, 5, 6), "nope")


def test_ambiguous_signal_requires_name(tmp_path):
    # Write two signals by composing writers manually is unsupported via
    # write_emd (one signal per call); simulate missing signal instead.
    sig = make_signal()
    path = tmp_path / "a.emd"
    write_emd(path, sig)
    with read_emd(path) as f:
        with pytest.raises(KeyError):
            f.signal("nope")


def test_metadata_json_roundtrip_standalone():
    md = make_metadata()
    again = AcquisitionMetadata.from_json(md.to_json())
    assert again == md


def test_metadata_missing_field_raises():
    with pytest.raises(FormatError):
        AcquisitionMetadata.from_json("{}")
    with pytest.raises(FormatError):
        AcquisitionMetadata.from_json("not json")


def test_estimate_emd_size_matches_payload():
    # 600 x 500 x 500 float64 ≈ 1.2 GB — the paper's spatiotemporal file.
    est = estimate_emd_size((600, 500, 500), np.float64)
    assert est == pytest.approx(1.2e9, rel=0.01)
    # 256*256*680 float64 ≈ 356 MB; the hyperspectral 91 MB file uses f4.
    est2 = estimate_emd_size((256, 256, 680), np.float32)
    assert est2 == pytest.approx(178e6, rel=0.01)


def test_iso_timestamps_are_ordered():
    a = iso_from_campaign_seconds(0.0)
    b = iso_from_campaign_seconds(3600.0)
    assert a < b
    assert b.startswith("2023-06-01T01")
