"""Tests for ``repro.integrity``: digests, chains, the ledger, and the
end-to-end zero-silent-acceptance audit under chaos corruption.

The tentpole invariant: every corruption the chaos layer injects —
at-rest bit rot, in-flight chunk corruption/truncation, metadata–payload
mismatch — is either *repaired* (retransmit/retry) or *quarantined*
(dead-lettered with its digest chain, never published to search).
"""

from __future__ import annotations

import pytest

from repro.chaos import SCENARIOS, run_chaos_campaign
from repro.core import run_campaign
from repro.errors import IntegrityError
from repro.integrity import (
    DigestChain,
    IntegrityLedger,
    audit_spans,
    chunk_digest,
    format_audit,
    mangle,
    run_integrity_campaign,
)
from repro.obs import Observability, derive_integrity_events
from repro.sim import Environment
from repro.storage import VirtualFS
from repro.units import MB


# -- digest arithmetic -------------------------------------------------------


def test_mangle_deterministic_and_never_identity():
    d = "abc123" * 5
    assert mangle(d) == mangle(d)
    assert mangle(d) != d
    assert mangle(d, "salt-a") != mangle(d, "salt-b")
    # re-mangling drifts further, never back to the original
    assert mangle(mangle(d)) != d


def test_chunk_digest_binds_payload_seq_and_size():
    base = chunk_digest("payload", 3, MB(8))
    assert base == chunk_digest("payload", 3, MB(8))
    assert base != chunk_digest("payload", 4, MB(8))  # other chunk
    assert base != chunk_digest("payload", 3, MB(4))  # truncated
    assert base != chunk_digest(mangle("payload"), 3, MB(8))  # rotten


# -- digest chains -----------------------------------------------------------


def test_chain_closes_on_matching_attestations():
    chain = DigestChain(path="/a.emd", subject="acq-1", declared="d0")
    assert not chain.closed
    assert "no acquisition" in chain.why_open()
    chain.attest("acquired", "d0", at=0.0, by="watcher")
    assert "not transferred/streamed" in chain.why_open()
    chain.attest("streamed", "d0", at=5.0, by="receiver")
    assert "no verified-read" in chain.why_open()
    chain.attest("analyzed", "d0", at=9.0, by="compute")
    assert chain.closed and chain.why_open() is None
    assert chain.stages == {"acquired", "streamed", "analyzed"}


def test_chain_mismatched_hop_stays_open_until_reattested():
    chain = DigestChain(path="/a.emd", subject="acq-1", declared="d0")
    chain.attest("acquired", "d0", at=0.0, by="watcher")
    chain.attest("transferred", mangle("d0"), at=5.0, by="transfer")
    chain.attest("analyzed", "d0", at=9.0, by="compute")
    assert not chain.closed
    assert "does not match declared" in chain.why_open()
    # a faulted transfer retried clean re-attests the hop; latest wins
    chain.attest("transferred", "d0", at=7.0, by="transfer")
    assert chain.digest_at("transferred") == "d0"
    assert chain.closed


def test_chain_rejects_unknown_stage():
    chain = DigestChain(path="/a.emd", subject="s", declared="d")
    with pytest.raises(ValueError):
        chain.attest("teleported", "d", at=0.0, by="x")


# -- the ledger --------------------------------------------------------------


def _ledger_world():
    env = Environment()
    obs = Observability(env)
    ledger = IntegrityLedger(env, tracer=obs.tracer, metrics=obs.metrics)
    return env, obs, ledger


def test_ledger_begin_is_idempotent_and_attests_acquired():
    _, _, ledger = _ledger_world()
    chain = ledger.begin("/a.emd", declared="d0", subject="acq-1", at=1.0)
    assert ledger.begin("/a.emd", declared="d0", subject="acq-1", at=2.0) is chain
    assert chain.digest_at("acquired") == "d0" and len(chain.links) == 1
    assert ledger.chain_for_subject("acq-1") is chain
    # attest on a path with no open chain is a silent no-op
    ledger.attest("/never-seen", "analyzed", "d0", at=3.0, by="compute")


def test_ledger_quarantine_first_reason_wins():
    _, obs, ledger = _ledger_world()
    ledger.begin("/a.emd", declared="d0", subject="acq-1", at=0.0)
    rec = ledger.quarantine("/a.emd", reason="first")
    assert rec is not None and rec.reason == "first"
    assert ledger.quarantine("/a.emd", reason="second") is None
    assert ledger.is_quarantined("/a.emd")
    assert [q.reason for q in ledger.quarantined] == ["first"]
    assert obs.metrics.counter("integrity.quarantined").value == 1
    assert rec.to_dict()["chain"]["subject"] == "acq-1"


def test_publish_gate_refuses_open_chain_and_passes_closed():
    env, obs, ledger = _ledger_world()
    chain = ledger.begin("/a.emd", declared="d0", subject="acq-1", at=0.0)
    # unknown subjects (out-of-band ingest) pass without a receipt
    assert ledger.check_publishable("acq-unknown") == (True, "")
    ok, reason = ledger.check_publishable("acq-1")
    assert not ok and "does not close" in reason
    assert ledger.is_quarantined("/a.emd")  # refused AND dead-lettered
    # a closed chain publishes and leaves the audit's receipt span
    chain.attest("streamed", "d0", at=1.0, by="receiver")
    chain.attest("analyzed", "d0", at=2.0, by="compute")
    ledger.begin("/b.emd", declared="d1", subject="acq-2", at=0.0)
    chain_b = ledger.chain("/b.emd")
    chain_b.attest("transferred", "d1", at=1.0, by="transfer")
    chain_b.attest("analyzed", "d1", at=2.0, by="compute")
    assert ledger.check_publishable("acq-2") == (True, "")
    assert ledger.published == ["/b.emd"]
    names = [s.name for s in obs.tracer.spans]
    assert names.count("integrity.publish") == 1
    # the earlier refusal can never be re-published
    ok, reason = ledger.check_publishable("acq-1")
    assert not ok


def test_verify_read_raises_on_rotten_payload():
    _, _, ledger = _ledger_world()
    fs = VirtualFS("eagle")
    f = fs.create("/transfer/a.emd", MB(8), created_at=0.0)
    descriptor = {
        "path": "/acq/a.emd",
        "dest_path": "/transfer/a.emd",
        "checksum": f.checksum,
    }
    assert ledger.verify_read(fs, descriptor) == f.checksum
    fs.corrupt("/transfer/a.emd", salt="test")
    with pytest.raises(IntegrityError, match="digest mismatch"):
        ledger.verify_read(fs, descriptor)
    assert ledger.detections and ledger.detections[-1].kind == "read"


def test_scrub_quarantines_dormant_rot():
    _, _, ledger = _ledger_world()
    fs = VirtualFS("user")
    fs.create("/acq/ok.emd", MB(8), created_at=0.0)
    fs.create("/acq/rot.emd", MB(8), created_at=0.0)
    fs.create("/plots/p.png", MB(1), created_at=0.0, kind="plot")
    fs.corrupt("/acq/rot.emd", salt="bitrot")
    fs.corrupt("/plots/p.png", salt="bitrot")  # non-emd: out of scope
    assert ledger.scrub([fs]) == 1
    assert ledger.is_quarantined("/acq/rot.emd")
    assert not ledger.is_quarantined("/acq/ok.emd")


def test_vfs_corrupt_is_silent_and_detectable():
    fs = VirtualFS("user")
    seen = []
    fs.subscribe(seen.append)
    f = fs.create("/acq/a.emd", MB(8), created_at=0.0)
    assert f.intact and f.payload_digest == f.checksum
    fs.corrupt("/acq/a.emd", salt="x")
    rotten = fs.stat("/acq/a.emd")
    assert not rotten.intact
    assert rotten.payload_digest == mangle(f.checksum, "x")
    assert rotten.checksum == f.checksum  # declared value unchanged
    assert len(seen) == 1  # create notified; corruption did NOT


# -- campaign wiring ---------------------------------------------------------


def test_corruption_without_integrity_is_rejected():
    with pytest.raises(ValueError, match="integrity"):
        run_campaign(
            "hyperspectral", duration_s=60.0, seed=0,
            chaos=SCENARIOS["corruption"], integrity=False,
        )


def test_clean_campaign_has_no_ledger_or_integrity_spans():
    res = run_campaign(
        "hyperspectral", duration_s=600.0, seed=3, obs=True, ingest="stream"
    )
    assert res.ledger is None
    events = derive_integrity_events(res.testbed.obs.tracer.spans)
    assert all(len(v) == 0 for v in events.values())


def test_integrity_on_clean_campaign_publishes_closed_chains():
    """``integrity=True`` without corruption: everything verifies, every
    published record's chain closes, the audit passes with zero
    injections."""
    res = run_campaign(
        "hyperspectral", duration_s=600.0, seed=3, obs=True,
        ingest="stream", integrity=True,
    )
    ledger = res.ledger
    assert ledger is not None
    assert not ledger.detections and not ledger.quarantined
    assert ledger.published
    for path in ledger.published:
        assert ledger.chain(path).closed
    report = audit_spans(res.testbed.obs.tracer.spans)
    assert report.ok and report.counts["injections"] == 0
    assert report.counts["publishes"] == len(ledger.published)


# -- the tentpole: zero silent acceptances under chaos corruption ------------


def test_corruption_campaign_stream_audit_zero_silent():
    result, report = run_integrity_campaign(
        duration_s=600.0, seed=3, ingest="stream"
    )
    assert report.counts["injections"] > 0  # the scenario actually fired
    assert report.ok, format_audit(report)
    assert not report.silent and not report.publish_violations
    res = report.by_resolution()
    assert res["silent"] == 0
    assert res["repaired"] + res["quarantined"] == len(report.injections)
    # chunk faults heal by retransmit; the latency breakdown sees them
    assert report.latency_breakdown()["stream"]["n"] > 0
    # quarantined sessions are dead-lettered with their chains, never
    # published; published sessions all closed their chains
    ledger = result.ledger
    quarantined_paths = {q.path for q in ledger.quarantined}
    assert not quarantined_paths & set(ledger.published)
    for q in ledger.quarantined:
        assert q.chain.path == q.path and not q.chain.closed
    statuses = {s.status for s in result.app.sessions}
    assert "PUBLISHED" in statuses  # corruption didn't take the campaign down
    text = format_audit(report)
    assert "zero silent acceptances" in text and "PASS" in text


def test_corruption_campaign_file_audit_zero_silent():
    result, report = run_integrity_campaign(
        duration_s=600.0, seed=3, ingest="file"
    )
    assert report.counts["injections"] > 0
    assert report.ok, format_audit(report)
    # at-rest rot in file mode is caught by the transfer's re-stat or
    # the end-of-campaign scrub — both file-mode verifiers
    assert report.latency_breakdown()["file"]["n"] > 0


def test_chaos_corruption_arms_publisher_and_receiver():
    res = run_chaos_campaign(
        "corruption", duration_s=300.0, seed=1, obs=True, ingest="stream"
    )
    assert res.ledger is not None
    assert res.app.publisher.corruptor is not None
    assert res.app.publisher.receiver.ledger is res.ledger


def test_integrity_cli_audit_exit_codes():
    from repro.__main__ import main

    rc = main([
        "integrity", "--duration", "600", "--seed", "3",
        "--ingest", "stream", "--audit",
    ])
    assert rc == 0
