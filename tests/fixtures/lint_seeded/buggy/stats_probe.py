"""Reconstruction of the Table-1 drift hazard: in-flight byte totals
accumulated over an unordered working set, so the rounded metric
depends on hash order rather than the workload (N703)."""


class ThroughputProbe:
    def __init__(self, gauge):
        self.gauge = gauge

    def record(self, sizes):
        inflight = set(sizes)
        total = 0.0
        for size in inflight:
            total += size
        self.gauge.set(total)
