"""Reconstruction of the laundered wall-clock hazard: a helper reads
time.time() and returns it as retry "jitter" — D101 only sees the
helper; the bug is the flow of that value into env.timeout (N705)."""

import time


def _retry_jitter(attempt):
    return (time.time() % 1.0) * attempt


def retry_loop(env, op, attempts):
    for attempt in range(attempts):
        if op():
            return True
        yield env.timeout(_retry_jitter(attempt))
    return False
