"""Reconstruction of the storage/vfs.py listing-order bug (PR 7): the
store's dict iterates in create/delete *mutation-history* order, and a
dispatch loop derives scheduling delays from that order — two stores
with identical contents replay differently (N701)."""


class Store:
    def __init__(self):
        self._files = {}

    def add(self, path, size):
        self._files[path] = size

    def delete(self, path):
        del self._files[path]

    def pending(self):
        # iteration order == mutation history, not content
        return [p for p in self._files.keys()]


def dispatch(env, store, spacing_s):
    for idx, _path in enumerate(store.pending()):
        yield env.timeout(idx * spacing_s)
