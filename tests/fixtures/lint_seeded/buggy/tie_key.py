"""Reconstruction of the identity-tiebreak hazard: equal-priority
waiters ordered by object id and a span annotated with an id() payload
— both track the allocator, not the workload (N704)."""


def drain_order(waiters):
    # equal-priority waiters tie-broken by allocation address
    return sorted(waiters, key=id)


def annotate(span, task):
    span.set("owner", id(task))
