"""Reconstruction of the parallel-sweep merge hazard: worker results
appended in completion order, so the merged campaign table depends on
process finish times instead of the variant grid (N702)."""

from concurrent.futures import as_completed


def merge_results(futures):
    rows = []
    for fut in as_completed(futures):
        rows.append(fut.result())
    return rows
