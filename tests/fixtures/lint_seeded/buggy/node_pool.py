"""Reconstruction of the PR-4 scheduler bug: the pool slot is claimed,
then the process sleeps through queue and boot delays holding it — a
kernel throw (chaos interrupt, campaign teardown) at either timeout
leaks the claim and every later requester deadlocks (R504)."""


def provision(env, pool, make_node, queue_s, boot_s):
    req = pool.request()
    yield req
    yield env.timeout(queue_s)
    yield env.timeout(boot_s)
    return make_node(request=req)
