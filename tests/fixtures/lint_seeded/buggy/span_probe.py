"""Reconstruction of the open-span class audited in PR 4: the probe
span is finished on the success path only, so any exception in the
transfer leaves it open forever and skews duration aggregates (R502)."""


def probe_transfer(env, tracer, fabric, nbytes):
    span = tracer.start("probe.transfer")
    stream = yield fabric.transfer("probe", "hub", nbytes)
    span.set("stream_id", stream.stream_id)
    span.finish()
    return stream
