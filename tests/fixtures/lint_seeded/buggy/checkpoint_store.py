"""Reconstruction of the pre-fix ``CheckpointStore._flush``: the temp
file is created, written and atomically swapped in — but any exception
between ``mkstemp`` and ``os.replace`` leaves the orphan behind (R503)."""

import json
import os
import tempfile


def flush_state(state, final_path):
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(final_path))
    os.write(fd, json.dumps(state).encode("utf-8"))
    os.close(fd)
    os.replace(tmp, final_path)
