"""Reconstruction of the PR-3 fabric bug: a per-flow completion timer
raced against the transfer event and never cancelled, so every early
finish left a stale event in the kernel heap (R501)."""


def drive_stream(env, fabric, stream, deadline_s):
    timer = env.timeout(deadline_s)
    finished = yield env.any_of([stream.done, timer])
    if stream.done in finished:
        return "ok"
    return "deadline"
