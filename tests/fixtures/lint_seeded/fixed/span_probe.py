"""The PR-4 fix: the span closes on every path out, success included
(``finish()`` keeps the first end time, so the normal path needs no
separate call)."""


def probe_transfer(env, tracer, fabric, nbytes):
    span = tracer.start("probe.transfer")
    try:
        stream = yield fabric.transfer("probe", "hub", nbytes)
        span.set("stream_id", stream.stream_id)
        return stream
    finally:
        span.finish()
