"""The committed ``CheckpointStore._flush`` shape: unlink the orphan on
any failure before re-raising."""

import json
import os
import tempfile


def flush_state(state, final_path):
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(final_path))
    try:
        os.write(fd, json.dumps(state).encode("utf-8"))
        os.close(fd)
        os.replace(tmp, final_path)
    except OSError:
        os.unlink(tmp)
        raise
