"""Fixed twin of the Table-1 drift hazard: the working set is sorted
before accumulation, so the rounding sequence — and therefore the
emitted metric — is identical on every run."""


class ThroughputProbe:
    def __init__(self, gauge):
        self.gauge = gauge

    def record(self, sizes):
        inflight = set(sizes)
        total = 0.0
        for size in sorted(inflight):
            total += size
        self.gauge.set(total)
