"""The PR-3 fix: cancel the losing timer after the race."""


def drive_stream(env, fabric, stream, deadline_s):
    timer = env.timeout(deadline_s)
    finished = yield env.any_of([stream.done, timer])
    env.cancel(timer)
    if stream.done in finished:
        return "ok"
    return "deadline"
