"""Fixed twin of the identity-tiebreak hazard: ties break on a stable
per-task attribute and the span records the task's name — both are
pure functions of the workload."""


def drain_order(waiters):
    return sorted(waiters, key=lambda w: w.seq)


def annotate(span, task):
    span.set("owner", task.name)
