"""Fixed twin of the vfs listing-order bug: listings are sorted before
anything downstream can depend on their order, so dispatch is a pure
function of the store's contents."""


class Store:
    def __init__(self):
        self._files = {}

    def add(self, path, size):
        self._files[path] = size

    def delete(self, path):
        del self._files[path]

    def pending(self):
        return sorted(self._files.keys())


def dispatch(env, store, spacing_s):
    for idx, _path in enumerate(store.pending()):
        yield env.timeout(idx * spacing_s)
