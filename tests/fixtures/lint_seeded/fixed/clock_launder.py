"""Fixed twin of the laundered wall-clock hazard: jitter comes from the
seeded RNG stream, so retry timing replays bit-identically under a
fixed seed."""


def _retry_jitter(rng, attempt):
    return rng.random() * attempt


def retry_loop(env, rng, op, attempts):
    for attempt in range(attempts):
        if op():
            return True
        yield env.timeout(_retry_jitter(rng, attempt))
    return False
