"""Fixed twin of the sweep-merge hazard, using the core/sweep.py
ordered-merge idiom: results are stored keyed by submission index, so
the merged table is a pure function of the inputs no matter which
worker finishes first."""

from concurrent.futures import as_completed


def merge_results(futures):
    # futures: dict[future -> submission index]
    by_index = {}
    for fut in as_completed(futures):
        by_index[futures[fut]] = fut.result()
    return [by_index[i] for i in sorted(by_index)]
