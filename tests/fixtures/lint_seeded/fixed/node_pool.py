"""The PR-4 scheduler fix: a kernel throw mid-provision releases the
claim before propagating; a completed provision transfers ownership to
the node."""


def provision(env, pool, make_node, queue_s, boot_s):
    req = pool.request()
    try:
        yield req
        yield env.timeout(queue_s)
        yield env.timeout(boot_s)
    except BaseException:
        req.release()
        raise
    return make_node(request=req)
