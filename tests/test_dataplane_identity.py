"""Bit-identity gate for the vectorized data-plane kernels.

Every batched implementation is checked bit-for-bit (``array_equal`` on
float64 output, ``==`` on dataclass lists) against its frozen pre-PR
loop reference in ``instrument/_loops.py`` / ``analysis/_loops.py``,
across seeds.  No tolerance is used anywhere: the vectorizations were
chosen so float accumulation order is preserved exactly, and this suite
is what keeps that true.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import _loops as aloops
from repro.analysis.detection import BlobDetector, Detection, DetectorParams, nms
from repro.analysis.hyperspectral import identify_elements
from repro.analysis.video import _movie_bounds
from repro.instrument import _loops as iloops
from repro.instrument.phantoms import Particle, particle_mask
from repro.instrument.spatiotemporal import MovieSpec, generate_movie
from repro.instrument.xray import ELEMENT_LINES

SEEDS = (0, 1, 2)


# -- instrument ------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_generate_movie_bit_identical(seed):
    spec = MovieSpec(n_frames=6, shape=(160, 160), n_particles=8)
    movie, truth = generate_movie(spec, np.random.default_rng(seed))
    ref_movie, ref_truth = iloops.generate_movie_loops(
        spec, np.random.default_rng(seed)
    )
    assert movie.dtype == ref_movie.dtype == np.float64
    assert np.array_equal(movie, ref_movie)
    assert truth == ref_truth


@pytest.mark.parametrize("seed", SEEDS)
def test_generate_movie_boundary_fallback_identical(seed):
    # Small frame + large radii: particle windows clip at the walls, so
    # the scalar boundary path runs alongside the batched interior path.
    spec = MovieSpec(n_frames=10, shape=(96, 96), n_particles=6,
                     radius_range=(6.0, 10.0))
    movie, truth = generate_movie(spec, np.random.default_rng(seed))
    ref_movie, ref_truth = iloops.generate_movie_loops(
        spec, np.random.default_rng(seed)
    )
    assert np.array_equal(movie, ref_movie)
    assert truth == ref_truth


@pytest.mark.parametrize("seed", SEEDS)
def test_particle_mask_bit_identical(seed):
    rng = np.random.default_rng(seed)
    particles = [
        Particle(row=float(r), col=float(c), radius=float(rad), element="Au")
        for r, c, rad in zip(
            rng.uniform(0, 128, 25), rng.uniform(0, 128, 25), rng.uniform(2, 12, 25)
        )
    ]
    got = particle_mask((128, 128), particles)
    ref = iloops.particle_mask_loops((128, 128), particles)
    assert np.array_equal(got, ref)


# -- analysis: detection ---------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_detect_bit_identical(seed):
    spec = MovieSpec(n_frames=3, shape=(160, 160), n_particles=8)
    movie, _ = generate_movie(spec, np.random.default_rng(seed))
    params = DetectorParams()
    det = BlobDetector(params)
    for t in range(movie.shape[0]):
        assert det.detect(movie[t]) == aloops.detect_loops(movie[t], params)


@pytest.mark.parametrize("seed", SEEDS)
def test_detect_movie_bit_identical(seed):
    spec = MovieSpec(n_frames=5, shape=(160, 160), n_particles=8)
    movie, _ = generate_movie(spec, np.random.default_rng(seed))
    params = DetectorParams()
    got = BlobDetector(params).detect_movie(movie)
    ref = aloops.detect_movie_loops(movie, params)
    assert got == ref


def test_detect_movie_shape_preserved():
    # Satellite: detect_movie output stays a per-frame list of lists.
    spec = MovieSpec(n_frames=4, shape=(128, 128), n_particles=5)
    movie, _ = generate_movie(spec, np.random.default_rng(0))
    out = BlobDetector().detect_movie(movie)
    assert isinstance(out, list) and len(out) == 4
    assert all(isinstance(f, list) for f in out)
    assert all(isinstance(d, Detection) for f in out for d in f)


def test_detect_movie_blocking_invariant_to_block_size(monkeypatch):
    # The frame-block partition must not leak into results.
    from repro.analysis import detection as dmod

    spec = MovieSpec(n_frames=6, shape=(128, 128), n_particles=6)
    movie, _ = generate_movie(spec, np.random.default_rng(1))
    whole = BlobDetector().detect_movie(movie)
    monkeypatch.setattr(dmod, "_BLOCK_BYTES", movie[0].nbytes)  # 1 frame/block
    assert BlobDetector().detect_movie(movie) == whole


@pytest.mark.parametrize("seed", SEEDS)
def test_nms_bit_identical_dense(seed):
    rng = np.random.default_rng(seed)
    n = 300
    cands = [
        Detection(
            x0=float(x), y0=float(y), x1=float(x + s), y1=float(y + s),
            confidence=float(c), scale=2.0,
        )
        for x, y, s, c in zip(
            rng.uniform(0, 500, n), rng.uniform(0, 500, n),
            rng.uniform(5, 40, n), rng.uniform(0.0, 1.0, n),
        )
    ]
    for thr in (0.2, 0.4, 0.7):
        assert nms(cands, thr) == aloops.nms_loops(cands, thr)


def test_nms_tie_order_stable():
    # Equal confidences: stable sort must preserve input order, exactly
    # as the reference's sorted() did.
    a = Detection(x0=0, y0=0, x1=10, y1=10, confidence=0.5, scale=1.0)
    b = Detection(x0=100, y0=100, x1=110, y1=110, confidence=0.5, scale=1.0)
    assert nms([a, b], 0.5) == aloops.nms_loops([a, b], 0.5) == [a, b]
    assert nms([b, a], 0.5) == aloops.nms_loops([b, a], 0.5) == [b, a]
    assert nms([], 0.5) == []


# -- analysis: hyperspectral ----------------------------------------------

def _spectrum_with_lines(seed, n_elements=6, n_bins=2048):
    rng = np.random.default_rng(seed)
    energies = np.linspace(0.0, 20000.0, n_bins)
    spectrum = 50.0 * np.exp(-energies / 6000.0) + rng.poisson(
        5.0, size=energies.shape
    )
    for _el, lines in list(ELEMENT_LINES.items())[:n_elements]:
        for line in lines:
            spectrum += 400.0 * np.exp(
                -0.5 * ((energies - line.energy_ev) / 40.0) ** 2
            )
    return spectrum, energies


@pytest.mark.parametrize("seed", SEEDS)
def test_identify_elements_bit_identical(seed):
    spectrum, energies = _spectrum_with_lines(seed)
    got = identify_elements(spectrum, energies)
    ref = aloops.identify_elements_loops(spectrum, energies)
    assert got == ref
    assert len(got) > 0  # the workload actually exercises matching


def test_identify_elements_empty_and_no_match():
    energies = np.linspace(0.0, 20000.0, 512)
    flat = np.zeros_like(energies)
    assert identify_elements(flat, energies) == []
    # Peaks far from every tabulated line with a tiny tolerance.
    spectrum = np.zeros_like(energies)
    spectrum[100] = 1000.0
    got = identify_elements(spectrum, energies, tolerance_ev=1e-6)
    ref = aloops.identify_elements_loops(spectrum, energies, tolerance_ev=1e-6)
    assert got == ref == []


# -- analysis: video -------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_movie_bounds_bit_identical(seed):
    rng = np.random.default_rng(seed)
    movie = np.abs(rng.normal(120.0, 40.0, size=(13, 64, 64)))
    for stride in (1, 2, 5):
        assert _movie_bounds(movie, stride) == aloops.movie_bounds_loops(
            movie, stride
        )


def test_movie_bounds_block_partition_invariant(monkeypatch):
    from repro.analysis import video as vmod

    movie = np.abs(np.random.default_rng(7).normal(120.0, 40.0, size=(9, 32, 32)))
    whole = vmod._movie_bounds(movie)
    monkeypatch.setattr(vmod, "_BLOCK_BYTES", movie[0].nbytes)  # 1 frame/block
    assert vmod._movie_bounds(movie) == whole
    assert whole == aloops.movie_bounds_loops(movie)


# -- both ingest modes end-to-end -----------------------------------------

@pytest.mark.parametrize("ingest", ["file", "stream"])
def test_campaign_trace_identical_across_ingest_modes(ingest):
    # The vectorized kernels sit under the campaign flows; identical
    # per-mode traces before/after vectorization are pinned by the
    # golden suite — here we re-assert the runs stay deterministic.
    from repro.core import run_campaign

    r1 = run_campaign("hyperspectral", duration_s=1800.0, seed=5, ingest=ingest)
    r2 = run_campaign("hyperspectral", duration_s=1800.0, seed=5, ingest=ingest)
    if ingest == "stream":
        assert len(r1.app.published_sessions) == len(r2.app.published_sessions) > 0
    else:
        assert len(r1.completed_runs) == len(r2.completed_runs) > 0
        assert [r.status for r in r1.runs] == [r.status for r in r2.runs]
    assert r1.trace == r2.trace
