"""Tests for unit constructors and formatters."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_decimal_sizes():
    assert units.KB(1) == 1e3
    assert units.MB(91) == 91e6
    assert units.GB(6.42) == pytest.approx(6.42e9)
    assert units.TB(0.1) == pytest.approx(1e11)


def test_binary_sizes():
    assert units.KiB(1) == 1024
    assert units.MiB(1) == 1024**2
    assert units.GiB(2) == 2 * 1024**3


def test_rates_convert_bits_to_bytes():
    assert units.bps(8) == 1.0
    assert units.Kbps(8) == 1e3
    assert units.Mbps(8) == 1e6
    assert units.Gbps(1) == 125e6


def test_durations():
    assert units.seconds(5) == 5.0
    assert units.minutes(2) == 120.0
    assert units.hours(1) == 3600.0


def test_format_bytes():
    assert units.format_bytes(units.GB(6.42)) == "6.42 GB"
    assert units.format_bytes(units.MB(91)) == "91.00 MB"
    assert units.format_bytes(512) == "512 B"
    assert units.format_bytes(-units.MB(1)) == "-1.00 MB"


def test_format_rate():
    assert units.format_rate(units.Gbps(1)) == "1.00 Gbps"
    assert units.format_rate(units.Mbps(200)) == "200.00 Mbps"
    assert units.format_rate(1) == "8 bps"


def test_format_duration():
    assert units.format_duration(12.34) == "12.3s"
    assert units.format_duration(75) == "1m15s"
    assert units.format_duration(3661) == "1h01m01s"
    assert units.format_duration(-30) == "-30.0s"


@given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
def test_format_bytes_total(n):
    """Formatter never crashes and always returns a unit suffix."""
    s = units.format_bytes(n)
    assert any(s.endswith(u) for u in ("B", "kB", "MB", "GB", "TB"))


@given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
def test_size_roundtrip_mb(n):
    assert units.MB(n) / 1e6 == pytest.approx(n)
