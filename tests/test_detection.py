"""Tests for the blob detector, labeling, and tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    BlobDetector,
    Box,
    DetectorParams,
    IouTracker,
    LabelingSpec,
    calibrate,
    count_series,
    hand_label,
    map_range,
    nms,
    split_9_3_1,
)
from repro.analysis.detection import Detection
from repro.errors import ReproError
from repro.instrument import MovieSpec, generate_movie


@pytest.fixture(scope="module")
def movie_world():
    """A small but realistic movie with ground truth."""
    spec = MovieSpec(n_frames=12, shape=(192, 192), n_particles=6, radius_range=(5, 10))
    movie, truth = generate_movie(spec, np.random.default_rng(0))
    return spec, movie, truth


# -- detector -------------------------------------------------------------------


def test_detector_finds_all_particles(movie_world):
    spec, movie, truth = movie_world
    det = BlobDetector(DetectorParams(threshold=9.0))
    found = det.detect(movie[0])
    confident = [d for d in found if d.confidence >= 0.8]
    assert len(confident) == len(truth[0])
    # Every truth particle has a nearby confident detection.
    for p in truth[0]:
        dists = [
            np.hypot((d.x0 + d.x1) / 2 - p.col, (d.y0 + d.y1) / 2 - p.row)
            for d in confident
        ]
        assert min(dists) < p.radius


def test_detector_empty_frame_no_detections():
    rng = np.random.default_rng(0)
    frame = rng.normal(100.0, 5.0, size=(128, 128))
    det = BlobDetector(DetectorParams(threshold=9.0))
    confident = [d for d in det.detect(frame) if d.confidence > 0.7]
    assert confident == []


def test_detector_rejects_bad_input():
    det = BlobDetector()
    with pytest.raises(ReproError):
        det.detect(np.zeros(10))
    with pytest.raises(ReproError):
        det.detect_movie(np.zeros((4, 4)))


def test_detector_params_validation():
    with pytest.raises(ReproError):
        DetectorParams(sigmas=())
    with pytest.raises(ReproError):
        DetectorParams(threshold=0)
    with pytest.raises(ReproError):
        DetectorParams(k=0.9)


def test_detect_movie_per_frame(movie_world):
    spec, movie, truth = movie_world
    det = BlobDetector(DetectorParams(threshold=9.0))
    per_frame = det.detect_movie(movie[:3])
    assert len(per_frame) == 3
    counts = count_series(per_frame, min_confidence=0.8)
    assert (counts == len(truth[0])).all()


def test_nms_removes_duplicates():
    a = Detection(0, 0, 10, 10, confidence=0.9)
    b = Detection(1, 1, 11, 11, confidence=0.5)  # heavy overlap with a
    c = Detection(50, 50, 60, 60, confidence=0.7)
    kept = nms([a, b, c], iou_threshold=0.4)
    assert a in kept and c in kept and b not in kept
    assert nms([], 0.5) == []


# -- calibration ("fine-tuning") ------------------------------------------------


def test_calibration_reaches_paper_quality(movie_world):
    """The calibrated detector should reach mAP50-95 comparable to the
    paper's YOLOv8 numbers (0.791 train / 0.801 val)."""
    spec, movie, truth = movie_world
    labeled = hand_label(truth, LabelingSpec(every_nth=2), rng=np.random.default_rng(1))
    frames = [movie[lf.frame_index] for lf in labeled]
    labels = [lf.boxes for lf in labeled]
    params, m_train = calibrate(frames[:4], labels[:4])
    assert m_train > 0.65
    det = BlobDetector(params)
    m_val = map_range([(det.detect(f), list(l)) for f, l in zip(frames[4:], labels[4:])])
    assert m_val > 0.6


def test_calibration_validates_inputs():
    with pytest.raises(ReproError):
        calibrate([], [])
    with pytest.raises(ReproError):
        calibrate([np.zeros((8, 8))], [])


# -- labeling -------------------------------------------------------------------


def test_hand_label_every_nth(movie_world):
    spec, movie, truth = movie_world
    labeled = hand_label(truth, LabelingSpec(every_nth=5))
    assert [lf.frame_index for lf in labeled] == [0, 5, 10]
    assert all(len(lf.boxes) == len(truth[0]) for lf in labeled)


def test_hand_label_boxes_near_truth(movie_world):
    spec, movie, truth = movie_world
    labeled = hand_label(truth, LabelingSpec(every_nth=12), rng=np.random.default_rng(0))
    for box, p in zip(labeled[0].boxes, truth[0]):
        cx, cy = box.center
        assert abs(cx - p.col) < 3
        assert abs(cy - p.row) < 3


def test_hand_label_miss_prob():
    truth = [[_particle(i) for i in range(50)]]
    labeled = hand_label(
        truth, LabelingSpec(every_nth=1, miss_prob=0.5), rng=np.random.default_rng(0)
    )
    assert 5 < len(labeled[0].boxes) < 45  # roughly half missed


def _particle(i):
    from repro.instrument import Particle

    return Particle(row=10.0 + i, col=10.0 + i, radius=3.0)


def test_labeling_spec_validation():
    with pytest.raises(ReproError):
        LabelingSpec(every_nth=0)
    with pytest.raises(ReproError):
        LabelingSpec(miss_prob=1.0)


def test_split_9_3_1_paper_counts():
    labeled = [_lf(i) for i in range(13)]
    train, val, test = split_9_3_1(labeled)
    assert (len(train), len(val), len(test)) == (9, 3, 1)


def test_split_scales_down():
    labeled = [_lf(i) for i in range(6)]
    train, val, test = split_9_3_1(labeled)
    assert len(train) + len(val) + len(test) == 6
    assert len(train) >= len(val) >= len(test) >= 1
    with pytest.raises(ReproError):
        split_9_3_1(labeled[:2])


def _lf(i):
    from repro.analysis import LabeledFrame

    return LabeledFrame(frame_index=i, boxes=())


# -- tracking --------------------------------------------------------------------


def test_tracker_follows_moving_particles(movie_world):
    spec, movie, truth = movie_world
    det = BlobDetector(DetectorParams(threshold=9.0))
    per_frame = det.detect_movie(movie)
    tracks = IouTracker().run(per_frame)
    long_tracks = [t for t in tracks if t.length >= spec.n_frames - 2]
    assert len(long_tracks) == spec.n_particles
    # Track identity is stable: ids of long tracks are unique.
    assert len({t.track_id for t in long_tracks}) == len(long_tracks)


def test_tracker_counts_match_truth(movie_world):
    spec, movie, truth = movie_world
    det = BlobDetector(DetectorParams(threshold=9.0))
    counts = count_series(det.detect_movie(movie), min_confidence=0.8)
    assert counts.shape == (spec.n_frames,)
    assert (counts == spec.n_particles).all()


def test_tracker_handles_disappearance():
    tracker = IouTracker(max_misses=1)
    d = Detection(0, 0, 10, 10, confidence=0.9)
    tracker.update(0, [d])
    tracker.update(1, [])  # miss 1
    tracker.update(2, [])  # miss 2 -> retired
    tracker.update(3, [Detection(0, 0, 10, 10, confidence=0.9)])
    all_tracks = tracker.finished + tracker.active
    assert len(all_tracks) == 2  # original retired, new one born


def test_tracker_validation():
    with pytest.raises(ReproError):
        IouTracker(iou_threshold=0)
    with pytest.raises(ReproError):
        IouTracker(max_misses=-1)


def test_track_displacement():
    tracker = IouTracker()
    tracker.update(0, [Detection(0, 0, 10, 10, confidence=0.9)])
    tracker.update(1, [Detection(3, 4, 13, 14, confidence=0.9)])
    track = tracker.active[0]
    assert track.displacement() == pytest.approx(5.0)
    assert track.first_frame == 0 and track.last_frame == 1
