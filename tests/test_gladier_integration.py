"""Additional integration coverage: flow failure paths end to end."""

from __future__ import annotations

import pytest

from repro.core import (
    FlowTriggerApp,
    hyperspectral_cost_model,
    picoprobe_flow,
)
from repro.flows import RunStatus
from repro.instrument import HYPERSPECTRAL_USE_CASE
from repro.testbed import DEFAULT_CALIBRATION, build_testbed
from repro.transfer import FaultPlan
from repro.watcher import SimObserver


def emit(tb, index=0):
    uc = HYPERSPECTRAL_USE_CASE
    md = tb.instrument.stamp_metadata(
        uc.signal_type, uc.shape, uc.dtype, uc.sample, acquired_at=tb.env.now
    )
    return tb.user_fs.create(
        f"/transfer/f{index:03d}.emd", uc.file_size_bytes,
        created_at=tb.env.now, metadata=md,
    )


def build_app(tb, fn):
    fid = tb.compute.register_function(
        fn, hyperspectral_cost_model(DEFAULT_CALIBRATION, tb.rngs)
    )
    definition = picoprobe_flow(tb.gladier, "picoprobe-hyperspectral")
    app = FlowTriggerApp(tb, definition, fid)
    obs = SimObserver(tb.user_fs, prefix="/transfer")
    app.attach(obs)
    return app


def test_transfer_permanent_failure_fails_flow_cleanly():
    tb = build_testbed(
        seed=0, fault_plan=FaultPlan(transient_prob=1.0, max_attempts=2)
    )
    app = build_app(tb, lambda file: {"identifier": "x"})
    emit(tb)
    run = app.runs[0]
    tb.env.run(until=run.completed)
    assert run.status is RunStatus.FAILED
    assert "TransferData" in run.error
    # No downstream steps executed; nothing was published.
    assert [s.name for s in run.steps] == ["TransferData"]
    assert len(tb.portal_index) == 0
    # The file never landed on Eagle.
    assert len(tb.eagle_fs) == 0


def test_analysis_exception_fails_flow_and_reports_error():
    tb = build_testbed(seed=0)

    def exploding(file):
        raise RuntimeError("cube was corrupt")

    app = build_app(tb, exploding)
    emit(tb)
    run = app.runs[0]
    tb.env.run(until=run.completed)
    assert run.status is RunStatus.FAILED
    assert "cube was corrupt" in run.error
    # The transfer DID complete before the analysis failed.
    assert tb.eagle_fs.exists("/picoprobe/data/f000.emd")
    assert len(tb.portal_index) == 0


def test_invalid_record_fails_publication_step():
    tb = build_testbed(seed=0)
    # Returns a document that violates the DataCite schema.
    app = build_app(tb, lambda file: {"title": "missing everything"})
    emit(tb)
    run = app.runs[0]
    tb.env.run(until=run.completed)
    assert run.status is RunStatus.FAILED
    assert "PublishResults" in run.error
    assert "SchemaError" in run.error
    assert len(tb.portal_index) == 0


def test_failed_flow_still_releases_gating():
    """A gated campaign must not stall when a flow fails."""
    from repro.core import run_campaign

    res = run_campaign(
        "hyperspectral",
        duration_s=1200,
        seed=6,
        fault_plan=FaultPlan(transient_prob=0.45, max_attempts=2),
    )
    statuses = {r.status for r in res.runs if r.status.terminal}
    # Some fail permanently (p=0.2 per flow), yet the campaign continues.
    assert RunStatus.FAILED in statuses
    assert RunStatus.SUCCEEDED in statuses
    assert len(res.copier.emitted) >= 8
