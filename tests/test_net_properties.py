"""Property tests for the incremental max–min fair allocator.

The fabric now maintains per-link user indexes and recomputes only the
connected component a change touches.  The correctness claim is strong:
at *every* instant, every active stream's rate equals what a from-scratch
global :func:`~repro.net.fabric.max_min_fair_rates` over all active
streams would assign — including protocol ``efficiency < 1`` streams,
same-host (infinite-rate) streams, and links degraded or blacked out
(``scale=0``) mid-transfer.

Randomized scenarios drive admissions, completions, and link-health
flaps on random multi-switch topologies, and a monitor compares the
incremental rates against the reference allocation at random checkpoint
times (1e-9 relative tolerance; in practice they are bit-identical).
"""

from __future__ import annotations

import math
from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import NetworkFabric, Topology
from repro.net.fabric import max_min_fair_rates
from repro.sim import Environment
from repro.units import Gbps, MB


def reference_rates(fabric: NetworkFabric) -> dict[int, float]:
    """From-scratch global allocation over the fabric's current state."""
    streams = list(fabric.active_streams)
    caps = {}
    for s in streams:
        for link in s.links:
            caps[link.key] = link.capacity_bps * fabric._link_scale.get(link.key, 1.0)
    return max_min_fair_rates(streams, caps)


def check_against_reference(fabric: NetworkFabric, failures: "list[str]") -> None:
    ref = reference_rates(fabric)
    for s in fabric.active_streams:
        want = ref[s.stream_id]
        if not math.isclose(s.rate, want, rel_tol=1e-9, abs_tol=1e-12):
            failures.append(
                f"t={fabric.env.now}: stream {s.stream_id} "
                f"({s.src}->{s.dst}, eff={s.efficiency}) "
                f"incremental rate {s.rate!r} != reference {want!r}"
            )
    # The cached views must agree with the allocation they cache.
    by_pair: dict[tuple[str, str], float] = {}
    for s in fabric.active_streams:
        key = (s.src, s.dst)
        by_pair[key] = by_pair.get(key, 0.0) + s.rate
    for key, want in by_pair.items():
        got = fabric.throughput(*key)
        if got != want and not (math.isinf(got) and math.isinf(want)):
            failures.append(f"t={fabric.env.now}: throughput{key} {got!r} != {want!r}")


@st.composite
def scenarios(draw):
    n_switches = draw(st.integers(min_value=1, max_value=3))
    hosts_per = draw(st.integers(min_value=2, max_value=4))
    n_hosts = n_switches * hosts_per
    cap = st.sampled_from([Gbps(0.1), Gbps(0.5), Gbps(1), Gbps(2.5), Gbps(10)])
    host_caps = draw(st.lists(cap, min_size=n_hosts, max_size=n_hosts))
    trunk_caps = draw(st.lists(cap, min_size=n_switches, max_size=n_switches))
    host = st.integers(min_value=0, max_value=n_hosts - 1)
    transfers = draw(
        st.lists(
            st.tuples(
                host,  # src
                host,  # dst (== src makes a same-host, infinite-rate stream)
                st.floats(min_value=0.1, max_value=80.0),  # size in MB
                st.sampled_from([1.0, 1.0, 0.9, 0.62, 0.25]),  # efficiency
                st.floats(min_value=0.0, max_value=4.0),  # start time
            ),
            min_size=1,
            max_size=10,
        )
    )
    # Health flaps hit host uplinks: (host, scale, time).  scale=0.0 is
    # a full blackout; a final restore below unsticks stalled streams.
    flaps = draw(
        st.lists(
            st.tuples(
                host,
                st.sampled_from([0.0, 0.0, 0.15, 0.5, 1.0]),
                st.floats(min_value=0.0, max_value=6.0),
            ),
            max_size=4,
        )
    )
    checkpoints = draw(
        st.lists(
            st.floats(min_value=0.001, max_value=8.0),
            min_size=3,
            max_size=8,
            unique=True,
        )
    )
    return {
        "n_switches": n_switches,
        "hosts_per": hosts_per,
        "host_caps": host_caps,
        "trunk_caps": trunk_caps,
        "transfers": transfers,
        "flaps": flaps,
        "checkpoints": sorted(checkpoints),
    }


def build(scenario):
    env = Environment()
    topo = Topology()
    n_switches = scenario["n_switches"]
    for k in range(n_switches):
        topo.add_node(f"sw{k}", kind="switch")
        if k:
            topo.add_link(f"sw{k-1}", f"sw{k}", scenario["trunk_caps"][k])
    uplinks = []
    for h, cap in enumerate(scenario["host_caps"]):
        sw = f"sw{h % n_switches}"
        topo.add_node(f"h{h}")
        topo.add_link(f"h{h}", sw, cap)
        uplinks.append((f"h{h}", sw))
    return env, topo, uplinks


@settings(max_examples=200, deadline=None)
@given(scenarios())
def test_incremental_allocation_equals_reference(scenario):
    env, topo, uplinks = build(scenario)
    fabric = NetworkFabric(env, topo)
    failures: "list[str]" = []
    done: "list[int]" = []

    def submit(env, src, dst, size_mb, eff, start):
        yield env.timeout(start)
        stream = yield fabric.transfer(f"h{src}", f"h{dst}", MB(size_mb), efficiency=eff)
        done.append(stream.stream_id)
        check_against_reference(fabric, failures)

    def flap(env, host, scale, at):
        yield env.timeout(at)
        fabric.set_link_health(*uplinks[host], scale)
        check_against_reference(fabric, failures)

    def monitor(env):
        for t in scenario["checkpoints"]:
            if t > env.now:
                yield env.timeout(t - env.now)
            check_against_reference(fabric, failures)
        # After every flap has fired, restore every uplink so
        # blacked-out streams can drain and the run terminates.
        if env.now < 10.0:
            yield env.timeout(10.0 - env.now)
        for a, b in uplinks:
            fabric.set_link_health(a, b, 1.0)
            check_against_reference(fabric, failures)

    for t in scenario["transfers"]:
        env.process(submit(env, *t))
    for f in scenario["flaps"]:
        env.process(flap(env, *f))
    env.process(monitor(env))
    env.run()
    assert not failures, "\n".join(failures[:10])
    assert len(done) == len(scenario["transfers"])
    assert fabric.active_streams == []


def test_blackout_stalls_and_restore_resumes():
    """scale=0 mid-transfer stalls the stream at rate 0 (reference
    agrees), and restoring health completes it."""
    env = Environment()
    topo = Topology()
    topo.add_node("a")
    topo.add_node("sw", kind="switch")
    topo.add_node("b")
    topo.add_link("a", "sw", Gbps(1))
    topo.add_link("sw", "b", Gbps(1))
    fabric = NetworkFabric(env, topo)
    failures: "list[str]" = []
    done = fabric.transfer("a", "b", MB(100))

    def chaos(env):
        yield env.timeout(0.1)
        fabric.set_link_health("a", "sw", 0.0)
        check_against_reference(fabric, failures)
        (stalled,) = fabric.active_streams
        assert stalled.rate == 0.0
        yield env.timeout(10.0)
        assert not done.triggered  # still stalled
        fabric.set_link_health("a", "sw", 1.0)
        check_against_reference(fabric, failures)

    env.process(chaos(env))
    env.run()
    assert done.triggered and not failures


def test_active_streams_cache_is_stable_between_changes():
    """Repeated reads return the same list object until membership
    changes; the view is always ascending by stream id."""
    env = Environment()
    topo = Topology()
    topo.add_node("hub", kind="switch")
    for h in range(4):
        topo.add_node(f"h{h}")
        topo.add_link(f"h{h}", "hub", Gbps(1))
    fabric = NetworkFabric(env, topo)

    def submit(env, i):
        yield env.timeout(float(i))
        yield fabric.transfer(f"h{i}", f"h{(i + 1) % 4}", MB(2000))

    def probe(env):
        yield env.timeout(1.5)  # two streams in flight
        view = fabric.active_streams
        assert [s.stream_id for s in view] == [1, 2]
        assert fabric.active_streams is view  # cached, not rebuilt
        yield env.timeout(1.0)  # third admission invalidates
        view2 = fabric.active_streams
        assert view2 is not view
        assert [s.stream_id for s in view2] == [1, 2, 3]

    for i in range(3):
        env.process(submit(env, i))
    env.process(probe(env))
    env.run()
    assert fabric.active_streams == []


def test_noop_settle_is_skipped_and_identity():
    """A repeat settle at one timestamp leaves every byte count
    untouched (it is skipped outright — zero elapsed time is the
    arithmetic identity)."""
    env = Environment()
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", Gbps(1))
    fabric = NetworkFabric(env, topo)
    fabric.transfer("a", "b", MB(80))

    def probe(env):
        yield env.timeout(0.2)
        fabric._settle()
        before = [(s.stream_id, s.remaining_bytes) for s in fabric.active_streams]
        assert fabric._last_settle == env.now
        fabric._settle()  # no-op: same timestamp
        after = [(s.stream_id, s.remaining_bytes) for s in fabric.active_streams]
        assert after == before

    env.process(probe(env))
    env.run()


def test_micro_fix_table1_identical():
    """Satellite regression: the settle-skip and cached-view micro-fixes
    leave the shipped campaigns' Table 1 rows exactly as recorded on the
    pre-optimization fabric."""
    import os

    from repro.core.campaign import run_campaign
    from repro.core.goldens import golden_filename, read_golden

    gdir = os.path.join(os.path.dirname(__file__), "goldens")
    for use_case in ("hyperspectral", "spatiotemporal"):
        golden = read_golden(
            os.path.join(gdir, golden_filename("campaign", use_case, 1, "fifo"))
        )
        res = run_campaign(use_case, duration_s=3600.0, seed=1)
        assert asdict(res.table1()) == golden["table1"], use_case
