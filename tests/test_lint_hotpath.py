"""P6xx hot-path performance rules: each fires only in its scope
(``# repro: hotpath`` functions for P601/P603, the instrument/analysis
data plane for P602) and stays quiet everywhere else."""

from __future__ import annotations

import textwrap

from repro.lint import Analyzer, LintConfig


def lint_at(source: str, path: str = "snippet.py"):
    analyzer = Analyzer(config=LintConfig(allow={}))
    return analyzer.lint_source(textwrap.dedent(source), path=path)


def rule_ids(source: str, path: str = "snippet.py"):
    return [d.rule_id for d in lint_at(source, path)]


# -- P601: allocation in hotpath functions ------------------------------------


def test_p601_fires_on_per_iteration_list_literal():
    src = """
    # repro: hotpath
    def step(items):
        out = []
        for i in items:
            out.append([i, i])
        return out
    """
    assert "P601" in rule_ids(src)


def test_p601_fires_on_lambda_in_hotpath():
    src = """
    def step(items):
        # repro: hotpath
        return sorted(items, key=lambda x: x[1])
    """
    assert "P601" in rule_ids(src)


def test_p601_fires_on_nested_def():
    src = """
    # repro: hotpath
    def dispatch(events):
        def handler(e):
            return e.eid
        return [handler(e) for e in events]
    """
    assert "P601" in rule_ids(src)


def test_p601_quiet_without_the_marker():
    src = """
    def step(items):
        out = []
        for i in items:
            out.append([i, i])
        return sorted(items, key=lambda x: x[1])
    """
    assert "P601" not in rule_ids(src)


def test_p601_quiet_when_allocation_is_hoisted():
    src = """
    # repro: hotpath
    def step(items, scratch):
        total = 0
        for i in items:
            total += i
        return total
    """
    assert "P601" not in rule_ids(src)


# -- P602: per-element array loops in the data plane --------------------------


def test_p602_fires_on_tuple_indexing_in_analysis():
    src = """
    def score(m, n):
        total = 0.0
        for i in range(n):
            total += m[i, 0]
        return total
    """
    assert "P602" in rule_ids(src, path="src/repro/analysis/metrics.py")


def test_p602_fires_on_chained_indexing_in_instrument():
    src = """
    def collapse(frames, n):
        out = 0.0
        for i in range(n):
            out += frames[0][i]
        return out
    """
    assert "P602" in rule_ids(src, path="src/repro/instrument/detector.py")


def test_p602_quiet_outside_the_data_plane():
    src = """
    def score(m, n):
        total = 0.0
        for i in range(n):
            total += m[i, 0]
        return total
    """
    assert "P602" not in rule_ids(src, path="src/repro/sim/core.py")


def test_p602_quiet_on_whole_frame_iteration():
    # data[t] pulls one whole frame per step — that is the intended
    # granularity, not a vectorization candidate
    src = """
    def frames(data, n):
        for t in range(n):
            emit(data[t])
    """
    assert "P602" not in rule_ids(src, path="src/repro/analysis/metrics.py")


# -- P603: invariant lookups in hot loops -------------------------------------


def test_p603_fires_on_repeated_invariant_chain():
    src = """
    # repro: hotpath
    def run(self, n):
        total = 0.0
        for i in range(n):
            a = self.cfg.scale * i
            total += self.cfg.scale + a
        return total
    """
    assert "P603" in rule_ids(src)


def test_p603_quiet_when_hoisted():
    src = """
    # repro: hotpath
    def run(self, n):
        scale = self.cfg.scale
        total = 0.0
        for i in range(n):
            a = scale * i
            total += scale + a
        return total
    """
    assert "P603" not in rule_ids(src)


def test_p603_quiet_when_loop_contains_a_yield():
    # a suspension point can invalidate any cached attribute
    src = """
    # repro: hotpath
    def run(self, n):
        for i in range(n):
            yield self.env.timeout(self.cfg.scale * self.cfg.scale)
    """
    assert "P603" not in rule_ids(src)


def test_p603_quiet_without_the_marker():
    src = """
    def run(self, n):
        total = 0.0
        for i in range(n):
            total += self.cfg.scale + self.cfg.scale
        return total
    """
    assert "P603" not in rule_ids(src)


def test_p6xx_noqa_suppresses():
    src = """
    # repro: hotpath
    def step(items):
        return sorted(items, key=lambda x: x[1])  # repro: noqa[P601]
    """
    assert "P601" not in rule_ids(src)
