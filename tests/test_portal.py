"""Tests for the DGPF-style portal."""

from __future__ import annotations

import pytest

from repro.auth import AuthClient
from repro.errors import SearchError
from repro.portal import Portal
from repro.portal.templates import escape, link_list, table
from repro.search import SearchIndex, make_record


def seeded_index():
    idx = SearchIndex("portal")
    idx.ingest(
        "hyper-1",
        make_record(
            "doi:h1",
            "Hyperspectral scan of polyamide film",
            ["alice"],
            2023,
            dates={"created": "2023-06-01T00:10:00"},
            experiment={
                "acquisition_id": "hyper-0001",
                "operator": "alice",
                "signal_type": "hyperspectral",
                "shape": [256, 256, 347],
                "microscope": {
                    "instrument": "Dynamic PicoProbe",
                    "beam_energy_kev": 300.0,
                    "magnification": 1.2e6,
                    "stage": {"x_um": 1.5, "y_um": -2.0, "alpha_deg": 3.0},
                    "detectors": [{"name": "XPAD"}],
                },
                "sample": {"name": "polyamide film", "elements": ["C", "N", "O", "Au"]},
                "software_version": "picoprobe-dataflow/1.0.0",
            },
            plots={
                "intensity": "<svg xmlns='http://www.w3.org/2000/svg'></svg>",
                "spectrum": "<svg xmlns='http://www.w3.org/2000/svg'></svg>",
                "not_a_plot": "plain text is skipped",
            },
            subjects=["hyperspectral", "membrane"],
        ),
        now=10.0,
    )
    idx.ingest(
        "spatio-1",
        make_record(
            "doi:s1",
            "Gold nanoparticle movie",
            ["alice"],
            2023,
            dates={"created": "2023-06-01T02:00:00"},
            experiment={"signal_type": "spatiotemporal", "acquisition_id": "spati-0001"},
            subjects=["spatiotemporal"],
        ),
        now=20.0,
    )
    return idx


def test_render_index_lists_records_and_facets():
    portal = Portal(seeded_index())
    html = portal.render_index()
    assert "Experiments (2)" in html
    assert "Hyperspectral scan of polyamide film" in html
    assert "Gold nanoparticle movie" in html
    assert "hyperspectral (1)" in html and "spatiotemporal (1)" in html
    assert html.startswith("<!DOCTYPE html>")


def test_render_index_date_window():
    portal = Portal(seeded_index())
    html = portal.render_index(
        date_range=("2023-06-01T00:00:00", "2023-06-01T01:00:00")
    )
    assert "Experiments (1)" in html
    assert "polyamide" in html
    assert "nanoparticle movie" not in html


def test_render_record_embeds_plots_and_metadata():
    portal = Portal(seeded_index())
    html = portal.render_record("hyper-1")
    assert html.count("<svg") == 2  # both real plots embedded
    assert "not_a_plot" not in html or "plain text is skipped" not in html
    assert "Beam energy (keV)" in html
    assert "300" in html
    assert "XPAD" in html
    assert "C, N, O, Au" in html
    assert "picoprobe-dataflow/1.0.0" in html


def test_render_record_missing_subject():
    portal = Portal(seeded_index())
    with pytest.raises(SearchError):
        portal.render_record("ghost")


def test_visibility_respected_in_build(tmp_path):
    auth = AuthClient()
    alice = auth.register_identity("alice")
    idx = seeded_index()
    idx.ingest(
        "secret-1",
        make_record("doi:x", "Private scan", ["alice"], 2023),
        visible_to=(alice.urn,),
    )
    portal = Portal(idx)
    # Anonymous build: only the two public records.
    written = portal.build(tmp_path / "anon")
    names = [p for p in written if p.endswith(".html")]
    assert len(names) == 3  # index + 2 records
    # Authenticated build sees the private record too.
    written_auth = portal.build(tmp_path / "alice", identity=alice)
    assert len(written_auth) == 4


def test_build_writes_valid_files(tmp_path):
    portal = Portal(seeded_index())
    written = portal.build(tmp_path)
    for p in written:
        text = open(p, encoding="utf-8").read()
        assert text.startswith("<!DOCTYPE html>")
        assert "</html>" in text


def test_escape_blocks_html_injection():
    idx = SearchIndex("portal")
    idx.ingest(
        "evil",
        make_record("doi:e", "<script>alert('xss')</script>", ["eve"], 2023),
    )
    portal = Portal(idx)
    html = portal.render_record("evil")
    assert "<script>" not in html
    assert "&lt;script&gt;" in html


def test_template_helpers():
    assert escape("<a&b>") == "&lt;a&amp;b&gt;"
    t = table([("k<", "v>")])
    assert "k&lt;" in t and "v&gt;" in t
    ll = link_list([("a.html", "A & B")])
    assert "A &amp; B" in ll
