"""Tests for the auth substrate."""

from __future__ import annotations

import pytest

from repro.auth import AccessPolicy, AuthClient, ScopeAuthorizer, TokenStore
from repro.auth.identity import (
    COMPUTE_SCOPE,
    TRANSFER_SCOPE,
)
from repro.errors import AuthError, PermissionDenied


@pytest.fixture
def client():
    return AuthClient()


@pytest.fixture
def alice(client):
    return client.register_identity("alice", organization="ANL")


def test_register_identity_idempotent(client):
    a = client.register_identity("bob")
    b = client.register_identity("bob")
    assert a is b


def test_unknown_identity_raises(client):
    with pytest.raises(AuthError):
        client.get_identity("ghost")


def test_identity_urn(alice):
    assert alice.urn == "urn:repro:identity:alice"


def test_issue_and_validate_token(client, alice):
    tok = client.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    ident = client.validate(tok, TRANSFER_SCOPE, now=100.0)
    assert ident is alice


def test_token_scope_enforced(client, alice):
    tok = client.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    with pytest.raises(PermissionDenied):
        client.validate(tok, COMPUTE_SCOPE, now=1.0)


def test_token_expiry(client, alice):
    tok = client.issue_token(alice, [TRANSFER_SCOPE], now=0.0, lifetime=10.0)
    client.validate(tok, TRANSFER_SCOPE, now=9.9)
    with pytest.raises(AuthError, match="expired"):
        client.validate(tok, TRANSFER_SCOPE, now=10.0)


def test_token_revocation(client, alice):
    tok = client.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    client.revoke(tok)
    with pytest.raises(AuthError, match="revoked"):
        client.validate(tok, TRANSFER_SCOPE, now=1.0)


def test_foreign_token_rejected(client, alice):
    other = AuthClient()
    other.register_identity("alice")
    foreign = other.issue_token(other.get_identity("alice"), [TRANSFER_SCOPE], now=0.0)
    with pytest.raises(AuthError, match="not issued"):
        client.validate(foreign, TRANSFER_SCOPE, now=0.0)


def test_unknown_scope_rejected_at_issue(client, alice):
    with pytest.raises(AuthError, match="unknown scopes"):
        client.issue_token(alice, ["urn:bogus:scope"], now=0.0)


def test_unregistered_identity_cannot_get_token(client):
    other = AuthClient().register_identity("eve")
    with pytest.raises(AuthError, match="not registered"):
        client.issue_token(other, [TRANSFER_SCOPE], now=0.0)


def test_token_store_caches_and_refreshes(client, alice):
    store = TokenStore(client, alice)
    t1 = store.get([TRANSFER_SCOPE], now=0.0)
    t2 = store.get([TRANSFER_SCOPE], now=1.0)
    assert t1 is t2  # cached
    # Near expiry: refreshed.
    t3 = store.get([TRANSFER_SCOPE], now=t1.expires_at - 1.0)
    assert t3 is not t1
    client.validate(t3, TRANSFER_SCOPE, now=t1.expires_at - 1.0)


def test_scope_authorizer(client, alice):
    tok = client.issue_token(alice, [COMPUTE_SCOPE], now=0.0)
    auth = ScopeAuthorizer(client, COMPUTE_SCOPE)
    assert auth.authorize(tok, now=5.0) is alice
    wrong = ScopeAuthorizer(client, TRANSFER_SCOPE)
    with pytest.raises(PermissionDenied):
        wrong.authorize(tok, now=5.0)


def test_invalid_lifetime():
    with pytest.raises(AuthError):
        AuthClient(lifetime=0)


# -- AccessPolicy -----------------------------------------------------------


def test_policy_writer_implies_reader(client, alice):
    pol = AccessPolicy().allow_write(alice)
    assert pol.can_read(alice)
    assert pol.can_write(alice)


def test_policy_reader_cannot_write(client, alice):
    pol = AccessPolicy().allow_read(alice)
    assert pol.can_read(alice)
    assert not pol.can_write(alice)
    with pytest.raises(PermissionDenied):
        pol.check_write(alice)


def test_policy_public_read(client):
    bob = client.register_identity("bob")
    pol = AccessPolicy().allow_read(AccessPolicy.PUBLIC)
    assert pol.can_read(bob)


def test_policy_denies_stranger(client):
    eve = client.register_identity("eve")
    pol = AccessPolicy()
    with pytest.raises(PermissionDenied):
        pol.check_read(eve, what="the index")


def test_policy_accepts_urn_strings(client, alice):
    pol = AccessPolicy().allow_read("urn:repro:identity:alice")
    assert pol.can_read(alice)
