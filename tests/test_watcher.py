"""Tests for the watcher substrate (observers + checkpointing)."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError, WatcherError
from repro.storage import VirtualFS
from repro.watcher import CheckpointStore, PollingObserver, SimObserver


# -- PollingObserver (real filesystem) -----------------------------------------


def test_polling_observer_detects_new_files(tmp_path):
    obs = PollingObserver(tmp_path)
    seen = []
    obs.add_handler(lambda e: seen.append(e.path))
    assert obs.poll_once() == []
    (tmp_path / "a.emd").write_bytes(b"x" * 10)
    events = obs.poll_once()
    assert len(events) == 1
    assert events[0].path.endswith("a.emd")
    assert events[0].size_bytes == 10
    assert seen == [events[0].path]
    # No re-trigger on the next poll.
    assert obs.poll_once() == []


def test_polling_observer_preexisting_files_not_reported(tmp_path):
    (tmp_path / "old.emd").write_bytes(b"x")
    obs = PollingObserver(tmp_path)
    assert obs.poll_once() == []


def test_polling_observer_suffix_filter(tmp_path):
    obs = PollingObserver(tmp_path, suffixes=(".emd",))
    (tmp_path / "junk.tmp").write_bytes(b"x")
    (tmp_path / "good.emd").write_bytes(b"x")
    events = obs.poll_once()
    assert [e.path.endswith(".emd") for e in events] == [True]


def test_polling_observer_recursive(tmp_path):
    obs = PollingObserver(tmp_path, recursive=True)
    sub = tmp_path / "deep" / "deeper"
    sub.mkdir(parents=True)
    (sub / "x.emd").write_bytes(b"x")
    assert len(obs.poll_once()) == 1


def test_polling_observer_bad_root():
    with pytest.raises(WatcherError):
        PollingObserver("/nonexistent/road/to/nowhere")


def test_polling_observer_run_for(tmp_path):
    obs = PollingObserver(tmp_path)
    (tmp_path / "a.emd").write_bytes(b"x")
    n = obs.run_for(duration_s=0.3, interval_s=0.05)
    assert n == 1
    with pytest.raises(WatcherError):
        obs.run_for(0.1, interval_s=0)


class FakeClock:
    """Virtual monotonic clock: sleep() advances time, nothing blocks."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


def test_polling_observer_injectable_clock_runs_without_wall_waits(tmp_path):
    clock = FakeClock()
    obs = PollingObserver(tmp_path, clock=clock, sleep=clock.sleep)
    (tmp_path / "a.emd").write_bytes(b"x")
    n = obs.run_for(duration_s=10.0, interval_s=0.5)
    assert n == 1
    # The loop ran entirely on virtual time: 20 polls, zero wall waiting.
    assert clock.sleeps == [0.5] * 20
    assert clock.now == pytest.approx(10.0)


def test_polling_observer_injectable_clock_sees_files_per_poll(tmp_path):
    clock = FakeClock()

    def sleep(seconds: float) -> None:
        clock.sleep(seconds)
        if len(clock.sleeps) == 1:
            # A new file appears during the first sleep interval.
            (tmp_path / "late.emd").write_bytes(b"y")

    obs = PollingObserver(tmp_path, clock=clock, sleep=sleep)
    seen: list[str] = []
    obs.add_handler(lambda e: seen.append(e.path))
    assert obs.run_for(duration_s=2.0, interval_s=0.5) == 1
    assert seen and seen[0].endswith("late.emd")


# -- SimObserver ------------------------------------------------------------------


def test_sim_observer_dispatches_creations():
    vfs = VirtualFS("user")
    obs = SimObserver(vfs, prefix="/transfer")
    seen = []
    obs.add_handler(lambda e: seen.append((e.path, e.size_bytes)))
    vfs.create("/transfer/a.emd", 100, created_at=1.0)
    vfs.create("/elsewhere/b.emd", 200, created_at=2.0)  # outside prefix
    vfs.create("/transfer/notes.txt", 5, created_at=3.0)  # wrong suffix
    assert seen == [("/transfer/a.emd", 100)]
    assert obs.events_seen == 1


def test_sim_observer_event_carries_virtual_file():
    vfs = VirtualFS("user")
    obs = SimObserver(vfs)
    got = []
    obs.add_handler(lambda e: got.append(e))
    vfs.create("/transfer/a.emd", 100, created_at=1.0)
    assert got[0].virtual is not None
    assert got[0].virtual.checksum
    assert got[0].is_emd


def test_sim_observer_stop_detaches():
    vfs = VirtualFS("user")
    obs = SimObserver(vfs)
    seen = []
    obs.add_handler(lambda e: seen.append(e))
    obs.stop()
    obs.stop()  # idempotent
    vfs.create("/transfer/a.emd", 100, created_at=1.0)
    assert seen == []


# -- CheckpointStore -----------------------------------------------------------------


def test_checkpoint_memory_roundtrip():
    ckpt = CheckpointStore()
    assert not ckpt.is_processed("/a", "c1")
    ckpt.mark_processed("/a", "c1")
    assert ckpt.is_processed("/a", "c1")
    assert not ckpt.is_processed("/a", "c2")  # new content retriggers
    assert "/a" in ckpt and len(ckpt) == 1


def test_checkpoint_persists_across_restart(tmp_path):
    path = tmp_path / "ckpt.json"
    ckpt = CheckpointStore(path)
    ckpt.mark_processed("/transfer/a.emd", "abc")
    # Simulate the user machine rebooting: new store, same file.
    again = CheckpointStore(path)
    assert again.is_processed("/transfer/a.emd", "abc")


def test_checkpoint_forget(tmp_path):
    path = tmp_path / "ckpt.json"
    ckpt = CheckpointStore(path)
    ckpt.mark_processed("/a", "c")
    ckpt.forget("/a")
    ckpt.forget("/a")  # idempotent
    assert not CheckpointStore(path).is_processed("/a", "c")


def test_checkpoint_corrupt_file_quarantined(tmp_path):
    """A corrupt store must never abort the restart: it is renamed to
    ``<path>.corrupt``, the watcher continues with an empty store, and
    a warning metric fires."""
    from repro.obs import MetricsRegistry
    from repro.sim import Environment

    path = tmp_path / "ckpt.json"
    path.write_text("{invalid json")
    metrics = MetricsRegistry(Environment())
    ckpt = CheckpointStore(path, metrics=metrics)
    assert ckpt.quarantined_path == f"{path}.corrupt"
    assert "corrupt" in ckpt.quarantine_reason
    assert not path.exists()
    assert (tmp_path / "ckpt.json.corrupt").read_text() == "{invalid json"
    assert len(ckpt) == 0
    assert metrics.counter("watcher.checkpoint_quarantined").value == 1
    # Processing continues: the empty store accepts new work and the
    # next flush rebuilds a clean file in place.
    ckpt.mark_processed("/a", "c1")
    assert ckpt.is_processed("/a", "c1")
    assert json.loads(path.read_text()) == {"/a": "c1"}


def test_checkpoint_malformed_store_quarantined(tmp_path):
    path = tmp_path / "ckpt.json"
    path.write_text(json.dumps({"a": 1}))  # wrong value type
    ckpt = CheckpointStore(path)
    assert ckpt.quarantined_path == f"{path}.corrupt"
    assert "malformed" in ckpt.quarantine_reason
    assert len(ckpt) == 0
    path.write_text(json.dumps(["not", "a", "dict"]))
    again = CheckpointStore(path)
    assert again.quarantine_reason is not None and len(again) == 0


def test_checkpoint_write_is_atomic(tmp_path):
    path = tmp_path / "ckpt.json"
    ckpt = CheckpointStore(path)
    for i in range(20):
        ckpt.mark_processed(f"/f{i}", f"c{i}")
    doc = json.loads(path.read_text())
    assert len(doc) == 20


def test_checkpoint_flush_failure_cleans_up_temp_file(tmp_path):
    """A TypeError from json.dump (non-serializable entry) used to leak
    the mkstemp temp file and its fd; every flush failure must clean up
    and surface as CheckpointError."""
    path = tmp_path / "ckpt.json"
    ckpt = CheckpointStore(path)
    ckpt.mark_processed("/good", "c1")

    ckpt._seen["/bad"] = object()  # not JSON-serializable
    with pytest.raises(CheckpointError, match="cannot write checkpoint"):
        ckpt._flush()
    leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".ckpt-")]
    assert leftovers == []
    # The on-disk store still holds the last good flush.
    assert json.loads(path.read_text()) == {"/good": "c1"}

    # And the store recovers once the bad entry is gone.
    del ckpt._seen["/bad"]
    ckpt.mark_processed("/good2", "c2")
    assert json.loads(path.read_text()) == {"/good": "c1", "/good2": "c2"}


def test_checkpoint_flush_failures_do_not_leak_fds(tmp_path):
    import os

    path = tmp_path / "ckpt.json"
    ckpt = CheckpointStore(path)
    ckpt._seen["/bad"] = object()
    fd_dir = "/proc/self/fd"
    before = len(os.listdir(fd_dir))
    for _ in range(20):
        with pytest.raises(CheckpointError):
            ckpt._flush()
    after = len(os.listdir(fd_dir))
    assert after <= before + 1  # no fd growth across repeated failures


# -- crash-restart recovery ----------------------------------------------------


def test_sim_observer_restart_replays_missed_files():
    """The crash-recovery protocol: files created while the watcher was
    down are recovered by the restart replay, and a checkpoint-style
    dedup handler dispatches each file exactly once — none lost, none
    doubled."""
    vfs = VirtualFS("user")
    obs = SimObserver(vfs, prefix="/transfer")
    dispatched: list[str] = []
    seen: set[str] = set()

    def handler(ev):
        if ev.path in seen:  # checkpoint dedup
            return
        seen.add(ev.path)
        dispatched.append(ev.path)

    obs.add_handler(handler)
    vfs.create("/transfer/a.emd", 100, created_at=1.0)
    assert obs.running

    obs.stop()  # crash
    assert not obs.running
    vfs.create("/transfer/b.emd", 100, created_at=2.0)  # missed while down
    vfs.create("/transfer/c.emd", 100, created_at=3.0)

    replayed = obs.restart(replay=True)
    assert obs.running
    assert replayed == 3  # the startup scan walks the whole prefix
    # a (already dispatched, deduped), b and c recovered — exactly once each
    assert sorted(dispatched) == [
        "/transfer/a.emd", "/transfer/b.emd", "/transfer/c.emd"
    ]

    # live events flow again after restart
    vfs.create("/transfer/d.emd", 100, created_at=4.0)
    assert "/transfer/d.emd" in dispatched


def test_sim_observer_restart_without_replay_loses_downtime_files():
    vfs = VirtualFS("user")
    obs = SimObserver(vfs, prefix="/transfer")
    seen = []
    obs.add_handler(lambda e: seen.append(e.path))
    obs.stop()
    vfs.create("/transfer/lost.emd", 100, created_at=1.0)
    assert obs.restart(replay=False) == 0
    assert seen == []  # documented data-loss mode
    vfs.create("/transfer/live.emd", 100, created_at=2.0)
    assert seen == ["/transfer/live.emd"]


def test_sim_observer_restart_while_running_raises():
    vfs = VirtualFS("user")
    obs = SimObserver(vfs)
    with pytest.raises(WatcherError):
        obs.restart()  # would double-subscribe and dispatch twice


def test_polling_observer_run_for_clamps_trailing_sleep(tmp_path):
    """Regression: the last sleep used to run a full interval past the
    deadline, overshooting ``duration_s`` by up to ``interval_s``."""
    clock = FakeClock()
    obs = PollingObserver(tmp_path, clock=clock, sleep=clock.sleep)
    obs.run_for(duration_s=0.9, interval_s=0.4)
    assert clock.sleeps == [0.4, 0.4, pytest.approx(0.1)]
    assert clock.now == pytest.approx(0.9)


def test_polling_observer_run_for_exact_multiple_unchanged(tmp_path):
    """A duration that divides evenly keeps the historical schedule."""
    clock = FakeClock()
    obs = PollingObserver(tmp_path, clock=clock, sleep=clock.sleep)
    obs.run_for(duration_s=10.0, interval_s=0.5)
    assert clock.sleeps == [0.5] * 20
    assert clock.now == pytest.approx(10.0)


def test_sim_observer_restart_counts_only_dispatched_files():
    """Regression: ``restart(replay=True)`` used to return the raw
    ``listdir`` length, counting files the prefix/suffix filter then
    rejected."""
    vfs = VirtualFS("user")
    obs = SimObserver(vfs, prefix="/transfer")
    seen = []
    obs.add_handler(lambda e: seen.append(e.path))
    vfs.create("/transfer/a.emd", 1, created_at=0.0)
    obs.stop()
    vfs.create("/transfer/b.emd", 1, created_at=1.0)  # missed while down
    vfs.create("/transfer/skip.txt", 1, created_at=1.5)  # filtered suffix
    replayed = obs.restart(replay=True)
    assert replayed == 2  # a + b dispatched; skip.txt rejected, not counted
    assert seen == ["/transfer/a.emd", "/transfer/a.emd", "/transfer/b.emd"]


def test_sim_observer_root_prefix_matches_listdir():
    """The root prefix accepts every path, live and replayed alike."""
    vfs = VirtualFS("user")
    obs = SimObserver(vfs, prefix="/")
    seen = []
    obs.add_handler(lambda e: seen.append(e.path))
    vfs.create("/a.emd", 1, created_at=0.0)
    assert seen == ["/a.emd"]
    obs.stop()
    vfs.create("/deep/b.emd", 1, created_at=1.0)
    assert obs.restart(replay=True) == 2
