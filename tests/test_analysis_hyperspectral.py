"""Tests for hyperspectral reductions, metadata extraction, and video
conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    build_search_document,
    convert_emd_to_video,
    extract_metadata,
    frame_to_uint8,
    identify_elements,
    intensity_figure_svg,
    intensity_map,
    metadata_tree,
    movie_to_uint8,
    read_video,
    spectrum_figure_svg,
    sum_spectrum,
    video_info,
    write_video,
)
from repro.emd import write_emd
from repro.errors import FormatError, ReproError
from repro.instrument import MovieSpec, PicoProbe, energy_axis
from repro.rng import RngRegistry
from repro.search import validate_datacite


@pytest.fixture(scope="module")
def hyper_signal():
    probe = PicoProbe(RngRegistry(0), operator="alice")
    sig, particles = probe.acquire_hyperspectral(shape=(48, 48), n_channels=512)
    return sig, particles


# -- reductions --------------------------------------------------------------


def test_intensity_map_shape(hyper_signal):
    sig, _ = hyper_signal
    img = intensity_map(sig.data)
    assert img.shape == (48, 48)
    np.testing.assert_allclose(img, sig.data.sum(axis=2))


def test_sum_spectrum_shape(hyper_signal):
    sig, _ = hyper_signal
    spec = sum_spectrum(sig.data)
    assert spec.shape == (512,)
    np.testing.assert_allclose(spec, sig.data.sum(axis=(0, 1)))


def test_reductions_reject_non_cube():
    with pytest.raises(ReproError):
        intensity_map(np.zeros((4, 4)))
    with pytest.raises(ReproError):
        sum_spectrum(np.zeros(4))


def test_identify_elements_finds_film_composition(hyper_signal):
    sig, _ = hyper_signal
    energies = sig.dims[2].values
    spec = sum_spectrum(sig.data)
    hits = identify_elements(spec, energies)
    found = {h.element for h in hits}
    # The polyamide film's light elements dominate the spectrum.
    assert {"C", "N", "O"} <= found


def test_identify_elements_validation():
    with pytest.raises(ReproError):
        identify_elements(np.zeros(10), np.zeros(11))


def test_identify_elements_flat_spectrum():
    e = energy_axis(128)
    assert identify_elements(np.zeros(128), e) == []


def test_figure_svgs_render(hyper_signal):
    sig, _ = hyper_signal
    f1 = intensity_figure_svg(sig.data)
    f2 = spectrum_figure_svg(sig.data, sig.dims[2].values)
    assert f1.startswith("<svg") and "base64" in f1
    assert f2.startswith("<svg") and "polyline" in f2


# -- metadata extraction ----------------------------------------------------------


def test_extract_metadata_from_file(tmp_path, hyper_signal):
    sig, _ = hyper_signal
    path = tmp_path / "a.emd"
    write_emd(path, sig)
    md = extract_metadata(path)
    assert md == sig.metadata


def test_metadata_tree_structure(hyper_signal):
    sig, _ = hyper_signal
    tree = metadata_tree(sig.metadata)
    assert tree["General"]["operator"] == "alice"
    assert tree["Acquisition_instrument"]["TEM"]["beam_energy_kev"] == 300.0
    assert tree["Acquisition_instrument"]["TEM"]["Detectors"][0]["name"] == "XPAD"
    assert tree["Signal"]["signal_type"] == "hyperspectral"
    assert tree["Sample"]["elements"]


def test_build_search_document_is_valid_datacite(hyper_signal):
    sig, _ = hyper_signal
    doc = build_search_document(
        sig.metadata,
        plots={"intensity": "<svg/>"},
        data_location="/eagle/data/a.emd",
    )
    validate_datacite(doc)
    assert doc["experiment"]["signal_type"] == "hyperspectral"
    assert doc["plots"]["intensity"] == "<svg/>"
    assert doc["data_location"] == "/eagle/data/a.emd"
    assert "hyperspectral" in doc["subjects"]


# -- video conversion -------------------------------------------------------------


def test_movie_to_uint8_casts_and_scales():
    movie = np.linspace(0, 1000, 4 * 8 * 8).reshape(4, 8, 8).astype(np.float64)
    out = movie_to_uint8(movie)
    assert out.dtype == np.uint8
    assert out.shape == movie.shape
    assert out.max() == 255
    assert out.min() == 0


def test_movie_to_uint8_constant_input():
    out = movie_to_uint8(np.full((2, 4, 4), 7.0))
    assert (out == 0).all()


def test_movie_to_uint8_validation():
    with pytest.raises(FormatError):
        movie_to_uint8(np.zeros((4, 4)))


def test_frame_to_uint8_bounds():
    frame = np.array([[0.0, 50.0, 100.0, 200.0]])
    out = frame_to_uint8(frame, 0.0, 100.0)
    assert list(out[0]) in ([0, 127, 254, 255], [0, 127, 255, 255])


def test_video_roundtrip(tmp_path):
    frames = [np.full((8, 8), i * 10, dtype=np.uint8) for i in range(5)]
    path = tmp_path / "m.mpng"
    n = write_video(path, frames, fps=10.0)
    assert n == 5
    assert video_info(path) == (5, 10.0)
    payloads = list(read_video(path))
    assert len(payloads) == 5
    assert all(p.startswith(b"\x89PNG") for p in payloads)


def test_video_bad_fps(tmp_path):
    with pytest.raises(FormatError):
        write_video(tmp_path / "m.mpng", [], fps=0)


def test_video_truncation_detected(tmp_path):
    path = tmp_path / "m.mpng"
    write_video(path, [np.zeros((4, 4), dtype=np.uint8)] * 3, fps=5)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 10])
    with pytest.raises(FormatError):
        list(read_video(path))


def test_video_not_mpng(tmp_path):
    path = tmp_path / "m.mpng"
    path.write_bytes(b"garbage" * 10)
    with pytest.raises(FormatError):
        video_info(path)


def test_convert_emd_to_video(tmp_path):
    probe = PicoProbe(RngRegistry(0))
    spec = MovieSpec(n_frames=4, shape=(32, 32), n_particles=2, radius_range=(3, 5))
    sig, _ = probe.acquire_spatiotemporal(spec)
    emd_path = tmp_path / "movie.emd"
    write_emd(emd_path, sig)
    out = tmp_path / "movie.mpng"
    n = convert_emd_to_video(emd_path, out, fps=25.0)
    assert n == 4
    assert video_info(out) == (4, 25.0)


def test_convert_rejects_hyperspectral(tmp_path):
    probe = PicoProbe(RngRegistry(0))
    sig, _ = probe.acquire_hyperspectral(shape=(32, 32), n_channels=16)
    emd_path = tmp_path / "cube.emd"
    write_emd(emd_path, sig)
    with pytest.raises(FormatError, match="spatiotemporal"):
        convert_emd_to_video(emd_path, tmp_path / "x.mpng")
