"""Tests for the simulated Dynamic PicoProbe instrument."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.instrument import (
    HYPERSPECTRAL_USE_CASE,
    SPATIOTEMPORAL_USE_CASE,
    FileCopier,
    MovieSpec,
    PicoProbe,
    UseCaseSpec,
    element_template,
    energy_axis,
    generate_movie,
    gold_on_carbon_phantom,
    polyamide_film_phantom,
    simulate_trajectories,
    synthesize_cube,
)
from repro.instrument.acquisition import nominal_size_check
from repro.instrument.xray import bremsstrahlung
from repro.rng import RngRegistry
from repro.sim import Environment
from repro.storage import VirtualFS


# -- X-ray synthesis ----------------------------------------------------------


def test_energy_axis_monotone():
    e = energy_axis(512, ev_per_channel=10.0)
    assert len(e) == 512
    assert (np.diff(e) > 0).all()
    assert e[0] == pytest.approx(5.0)


def test_energy_axis_validates():
    with pytest.raises(ReproError):
        energy_axis(0)


def test_element_template_peaks_at_line():
    e = energy_axis(2048, ev_per_channel=10.0)
    t = element_template("Au", e)
    assert t.max() == pytest.approx(1.0)
    # strongest Au peak is the M-alpha line at 2122.9 eV
    assert abs(e[np.argmax(t)] - 2122.9) < 20


def test_element_template_unknown_element():
    with pytest.raises(ReproError, match="line table"):
        element_template("Unobtanium", energy_axis(128))


def test_bremsstrahlung_decreasing():
    e = energy_axis(512, ev_per_channel=20.0)
    c = bremsstrahlung(e, beam_energy_kev=300.0)
    assert c[0] == pytest.approx(1.0)
    assert (np.diff(c) <= 1e-12).all()


def test_synthesize_cube_shape_and_counts():
    rng = np.random.default_rng(0)
    comp = {"C": np.ones((8, 8)), "Au": np.zeros((8, 8))}
    e = energy_axis(256)
    cube = synthesize_cube(comp, e, rng, counts_per_pixel=1000.0)
    assert cube.shape == (8, 8, 256)
    # Per-pixel totals should be near the requested counts (Poisson).
    totals = cube.sum(axis=2)
    assert abs(totals.mean() - 1000.0) < 50


def test_synthesize_cube_composition_shows_in_spectrum():
    rng = np.random.default_rng(1)
    h = w = 6
    comp_c = {"C": np.ones((h, w))}
    comp_au = {"Au": np.ones((h, w))}
    e = energy_axis(1024)
    cube_c = synthesize_cube(comp_c, e, rng, poisson=False)
    cube_au = synthesize_cube(comp_au, e, rng, poisson=False)
    spec_c = cube_c.sum(axis=(0, 1))
    spec_au = cube_au.sum(axis=(0, 1))
    # Carbon peaks near 277 eV; gold near 2123 eV.
    assert e[np.argmax(spec_c)] < 600
    assert 1900 < e[np.argmax(spec_au)] < 2400


def test_synthesize_cube_validation():
    rng = np.random.default_rng(0)
    e = energy_axis(64)
    with pytest.raises(ReproError):
        synthesize_cube({}, e, rng)
    with pytest.raises(ReproError):
        synthesize_cube({"C": np.ones((4, 4)), "O": np.ones((5, 5))}, e, rng)
    with pytest.raises(ReproError):
        synthesize_cube({"C": -np.ones((4, 4))}, e, rng)
    with pytest.raises(ReproError):
        synthesize_cube({"C": np.ones(4)}, e, rng)


# -- phantoms -------------------------------------------------------------------


def test_polyamide_phantom_contents():
    comp, particles = polyamide_film_phantom((64, 64), np.random.default_rng(0))
    assert set(comp) == {"C", "N", "O", "Au", "Pb"}
    assert all(m.shape == (64, 64) for m in comp.values())
    assert all((m >= 0).all() for m in comp.values())
    assert len(particles) == 18  # 12 Au + 6 Pb
    assert {p.element for p in particles} == {"Au", "Pb"}


def test_phantom_particles_inside_frame():
    comp, particles = polyamide_film_phantom((96, 80), np.random.default_rng(3))
    for p in particles:
        x0, y0, x1, y1 = p.bbox
        assert 0 <= x0 < x1 <= 80
        assert 0 <= y0 < y1 <= 96


def test_phantom_too_small_rejected():
    with pytest.raises(ReproError):
        polyamide_film_phantom((4, 4))


def test_gold_on_carbon_phantom():
    comp, particles = gold_on_carbon_phantom((128, 128), np.random.default_rng(0), n_gold=7)
    assert set(comp) == {"C", "Au"}
    assert len(particles) == 7
    # gold map is nonzero exactly around particles
    assert comp["Au"].max() > 0


# -- spatiotemporal -----------------------------------------------------------------


def test_trajectories_shape_and_bounds():
    spec = MovieSpec(n_frames=50, shape=(128, 128), n_particles=5, radius_range=(4, 8))
    pos, radii = simulate_trajectories(spec, np.random.default_rng(0))
    assert pos.shape == (50, 5, 2)
    assert radii.shape == (5,)
    assert (pos[..., 0] >= 0).all() and (pos[..., 0] <= 128).all()
    assert (pos[..., 1] >= 0).all() and (pos[..., 1] <= 128).all()


def test_trajectories_move():
    spec = MovieSpec(n_frames=20, shape=(128, 128), n_particles=3)
    pos, _ = simulate_trajectories(spec, np.random.default_rng(0))
    displacement = np.abs(pos[-1] - pos[0]).sum()
    assert displacement > 1.0


def test_movie_spec_validation():
    with pytest.raises(ReproError):
        simulate_trajectories(
            MovieSpec(n_frames=0, shape=(64, 64)), np.random.default_rng(0)
        )
    with pytest.raises(ReproError):
        simulate_trajectories(
            MovieSpec(n_frames=5, shape=(16, 16), radius_range=(10, 12)),
            np.random.default_rng(0),
        )


def test_generate_movie_particles_bright():
    spec = MovieSpec(
        n_frames=4, shape=(96, 96), n_particles=3, radius_range=(5, 8)
    )
    movie, truth = generate_movie(spec, np.random.default_rng(0))
    assert movie.shape == (4, 96, 96)
    assert movie.dtype == np.float64
    assert len(truth) == 4 and len(truth[0]) == 3
    for t in range(4):
        for p in truth[t]:
            peak = movie[t, int(p.row), int(p.col)]
            assert peak > spec.background_level + 5 * spec.background_noise


def test_generate_movie_deterministic():
    spec = MovieSpec(n_frames=3, shape=(64, 64), n_particles=2)
    m1, _ = generate_movie(spec, np.random.default_rng(7))
    m2, _ = generate_movie(spec, np.random.default_rng(7))
    np.testing.assert_array_equal(m1, m2)


# -- microscope -----------------------------------------------------------------


def test_picoprobe_hyperspectral_acquisition():
    probe = PicoProbe(RngRegistry(0), operator="alice")
    sig, particles = probe.acquire_hyperspectral(shape=(32, 32), n_channels=128, acquired_at=10.0)
    assert sig.data.shape == (32, 32, 128)
    assert sig.metadata.operator == "alice"
    assert sig.metadata.signal_type == "hyperspectral"
    assert sig.metadata.acquired_at == 10.0
    assert sig.metadata.microscope.detectors[0].name == "XPAD"
    assert len(particles) > 0
    assert sig.dims[2].units == "eV"


def test_picoprobe_spatiotemporal_acquisition():
    probe = PicoProbe(RngRegistry(0))
    spec = MovieSpec(n_frames=3, shape=(64, 64), n_particles=2)
    sig, truth = probe.acquire_spatiotemporal(spec, acquired_at=5.0)
    assert sig.data.shape == (3, 64, 64)
    assert sig.metadata.signal_type == "spatiotemporal"
    assert len(truth) == 3
    assert sig.dims[0].name == "time"


def test_picoprobe_acquisition_ids_unique():
    probe = PicoProbe(RngRegistry(0))
    s1, _ = probe.acquire_hyperspectral(shape=(32, 32), n_channels=32)
    s2, _ = probe.acquire_hyperspectral(shape=(32, 32), n_channels=32)
    assert s1.metadata.acquisition_id != s2.metadata.acquisition_id


def test_picoprobe_beam_energy_limits():
    probe = PicoProbe()
    probe.set_beam_energy(80.0)
    assert probe.state.beam_energy_kev == 80.0
    with pytest.raises(ValueError):
        probe.set_beam_energy(301.0)


def test_picoprobe_stage_moves():
    probe = PicoProbe()
    probe.move_stage(x_um=3.5, alpha_deg=12.0)
    assert probe.state.stage.x_um == 3.5
    assert probe.state.stage.alpha_deg == 12.0


# -- file copier -----------------------------------------------------------------


def test_use_case_specs_match_paper():
    assert HYPERSPECTRAL_USE_CASE.period_s == 30.0
    assert HYPERSPECTRAL_USE_CASE.file_size_bytes == 91e6
    assert SPATIOTEMPORAL_USE_CASE.period_s == 120.0
    assert SPATIOTEMPORAL_USE_CASE.file_size_bytes == 1200e6
    # declared sizes agree with the EMD size model for the tensor dims
    nominal_size_check(HYPERSPECTRAL_USE_CASE)
    nominal_size_check(SPATIOTEMPORAL_USE_CASE)


def test_use_case_validation():
    with pytest.raises(ReproError):
        UseCaseSpec("x", "hyperspectral", period_s=0, file_size_bytes=1, shape=(1,), dtype="<f8")
    with pytest.raises(ReproError):
        UseCaseSpec("x", "hyperspectral", period_s=1, file_size_bytes=0, shape=(1,), dtype="<f8")


def test_periodic_copier_emits_on_schedule():
    env = Environment()
    vfs = VirtualFS("user")
    copier = FileCopier(env, vfs, HYPERSPECTRAL_USE_CASE, mode="periodic")
    env.process(copier.run(until=95.0))
    env.run()
    times = [f.created_at for f in copier.emitted]
    assert times == [0.0, 30.0, 60.0, 90.0]
    assert len(vfs.listdir("/transfer")) == 4
    assert all(f.size_bytes == 91e6 for f in copier.emitted)


def test_gated_copier_waits_for_completion():
    env = Environment()
    vfs = VirtualFS("user")
    copier = FileCopier(env, vfs, HYPERSPECTRAL_USE_CASE, mode="gated")
    env.process(copier.run(until=200.0))

    # A fake flow executor that completes each flow 50 s after the file
    # appears (longer than the 30 s period → completion-gated spacing).
    def fake_flows(env):
        seen = 0
        while True:
            while len(copier.emitted) <= seen:
                yield env.timeout(1)
            seen += 1
            yield env.timeout(50)
            copier.notify_flow_complete()

    env.process(fake_flows(env))
    env.run(until=400)
    times = [f.created_at for f in copier.emitted]
    # Spacing is ~50s (the flow runtime), not the 30s period.
    gaps = np.diff(times)
    assert (gaps >= 49).all()


def test_gated_copier_respects_minimum_period():
    env = Environment()
    vfs = VirtualFS("user")
    copier = FileCopier(env, vfs, SPATIOTEMPORAL_USE_CASE, mode="gated")
    env.process(copier.run(until=500.0))

    def instant_flows(env):
        seen = 0
        while True:
            while len(copier.emitted) <= seen:
                yield env.timeout(0.5)
            seen += 1
            copier.notify_flow_complete()  # completes immediately

    env.process(instant_flows(env))
    env.run(until=600)
    gaps = np.diff([f.created_at for f in copier.emitted])
    assert (gaps >= 120).all()  # period still enforced


def test_copier_metadata_stamped():
    env = Environment()
    vfs = VirtualFS("user")
    copier = FileCopier(env, vfs, HYPERSPECTRAL_USE_CASE, mode="periodic")
    env.process(copier.run(until=31))
    env.run()
    md = copier.emitted[0].metadata
    assert md is not None
    assert md.signal_type == "hyperspectral"
    assert md.shape == (256, 256, 347)
    assert md.acquired_at == 0.0


def test_copier_rejects_unknown_mode():
    env = Environment()
    with pytest.raises(ReproError):
        FileCopier(env, VirtualFS("u"), HYPERSPECTRAL_USE_CASE, mode="bursty")


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=5, max_value=300), st.floats(min_value=100, max_value=2000))
def test_periodic_copier_count_property(period, horizon):
    """Property: a periodic copier emits ceil(horizon/period) files."""
    env = Environment()
    vfs = VirtualFS("user")
    uc = UseCaseSpec("t", "hyperspectral", period, 1e6, (4, 4, 4), "<f4")
    copier = FileCopier(env, vfs, uc, mode="periodic")
    env.process(copier.run(until=horizon))
    env.run()
    expected = int(np.ceil(horizon / period))
    assert len(copier.emitted) == expected
