"""Tier-1 self-check for the chaos fault-injection subsystem.

Guards the three promises :mod:`repro.chaos` makes:

1. **Disabled chaos is free** — a campaign run with the default
   :data:`~repro.chaos.NO_CHAOS` plan is *bit-identical* to one run with
   no chaos argument at all: same event trace, same spans, same Table 1.
2. **Enabled chaos is deterministic** — the same scenario under the same
   seed produces an identical fault schedule, identical retry counts,
   identical dead-letter sets, and identical delivery breakdowns.
3. **No run hangs** — under the shipped outage scenario every flow run
   reaches a terminal state: delivered, degraded-and-caught-up, or
   dead-lettered, never silently ACTIVE.
"""

from __future__ import annotations

import itertools

import pytest

from repro.auth import AuthClient
from repro.auth.identity import FLOWS_SCOPE
from repro.chaos import (
    ChaosPlan,
    LinkDegradation,
    NO_CHAOS,
    NodeFailureSpec,
    OutageWindow,
    ServiceGate,
    WatcherCrash,
    delivery_breakdown,
    run_chaos_campaign,
)
from repro.core import run_campaign
from repro.core.sanitize import campaign_trace
from repro.errors import ChaosError, FlowError, ServiceUnavailable
from repro.flows import (
    ActionState,
    ActionStatus,
    ConstantBackoff,
    ExponentialBackoff,
    FlowDefinition,
    FlowState,
    FlowsService,
    RetryPolicy,
    RunStatus,
)
from repro.rng import RngRegistry
from repro.sim import Environment


# -- plan validation -----------------------------------------------------------


def test_outage_window_validation():
    with pytest.raises(ChaosError):
        OutageWindow("globus", start_s=0, duration_s=10)  # unknown service
    with pytest.raises(ChaosError):
        OutageWindow("transfer", start_s=-1, duration_s=10)
    with pytest.raises(ChaosError):
        OutageWindow("transfer", start_s=0, duration_s=0)


def test_plan_rejects_overlapping_windows_per_service():
    with pytest.raises(ChaosError, match="overlap"):
        ChaosPlan(
            outages=(
                OutageWindow("transfer", start_s=0, duration_s=100),
                OutageWindow("transfer", start_s=50, duration_s=100),
            )
        )
    # same span on *different* services is fine
    ChaosPlan(
        outages=(
            OutageWindow("transfer", start_s=0, duration_s=100),
            OutageWindow("search", start_s=0, duration_s=100),
        )
    )


def test_degradation_validation():
    with pytest.raises(ChaosError):
        LinkDegradation("a", "b", start_s=0, duration_s=10, scale=1.5)
    with pytest.raises(ChaosError):
        LinkDegradation("a", "b", start_s=0, duration_s=10, scale=-0.1)
    LinkDegradation("a", "b", start_s=0, duration_s=10, scale=0.0)  # blackout ok


def test_node_failure_spec_draw_is_optional_and_bounded():
    spec = NodeFailureSpec(prob=1.0, min_frac=0.25, max_frac=0.75)
    rng = RngRegistry(0).stream("chaos.nodes")
    for _ in range(20):
        frac = spec.draw(rng)
        assert frac is not None and 0.25 <= frac <= 0.75
    none_spec = NodeFailureSpec(prob=0.0)
    state = rng.bit_generator.state["state"]["state"]
    assert none_spec.draw(rng) is None
    assert rng.bit_generator.state["state"]["state"] == state  # no draw made


def test_plan_enabled_flag():
    assert not NO_CHAOS.enabled
    # retry policies alone count: they change FlowsService configuration
    assert ChaosPlan(retry_policies=(("transfer", RetryPolicy()),)).enabled
    assert ChaosPlan(
        outages=(OutageWindow("transfer", start_s=0, duration_s=1),)
    ).enabled
    assert ChaosPlan(node_failures=NodeFailureSpec(prob=0.1)).enabled
    assert ChaosPlan(watcher_crashes=(WatcherCrash(at_s=1, down_s=1),)).enabled


# -- gate unit -----------------------------------------------------------------


def test_service_gate_raises_only_inside_windows():
    gate = ServiceGate(
        "transfer",
        (OutageWindow("transfer", start_s=10, duration_s=5),),
        connect_timeout_s=7.5,
    )
    gate.check(9.9)  # before: fine
    with pytest.raises(ServiceUnavailable) as info:
        gate.check(10.0)
    assert info.value.connect_timeout_s == 7.5
    assert gate.rejections == 1
    gate.check(15.0)  # window is half-open: [start, end)
    assert gate.rejections == 1


# -- FlowsService retry machinery ----------------------------------------------


class FlakyProvider:
    """Raises ServiceUnavailable for the first ``down`` submissions,
    then completes each action ``duration`` sim-seconds after submit."""

    name = "mock"
    input_schema: dict = {}

    def __init__(self, env, down=1, duration=5.0, fail_forever=False):
        self.env = env
        self.down = down
        self.duration = duration
        self.fail_forever = fail_forever
        self.submissions = 0
        self._ids = itertools.count(1)
        self._start: dict[str, float] = {}

    def run(self, body):
        self.submissions += 1
        if self.fail_forever or self.submissions <= self.down:
            raise ServiceUnavailable("mock outage", connect_timeout_s=2.0)
        aid = f"mock-{next(self._ids)}"
        self._start[aid] = self.env.now
        return aid

    def status(self, action_id):
        if self.env.now - self._start[action_id] < self.duration:
            return ActionStatus(state=ActionState.ACTIVE)
        return ActionStatus(
            state=ActionState.SUCCEEDED, result={}, active_seconds=self.duration
        )


def _flows(env, provider, policy):
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [FLOWS_SCOPE], now=0.0)
    svc = FlowsService(
        env,
        auth,
        RngRegistry(0),
        transition_latency_s=0.0,
        transition_sigma=0.0,
        poll_latency_s=0.0,
        backoff=ConstantBackoff(1.0),
        retry_policies={provider.name: policy},
    )
    svc.register_provider(provider)
    flow_id = svc.deploy(
        FlowDefinition(title="t", start_at="A", states=(FlowState("A", "mock"),))
    )
    return svc, token, flow_id


def test_retry_recovers_from_service_outage():
    env = Environment()
    provider = FlakyProvider(env, down=2)
    policy = RetryPolicy(max_attempts=3, backoff=ConstantBackoff(10.0))
    svc, token, flow_id = _flows(env, provider, policy)
    run = svc.run_flow(token, flow_id, {})
    env.run(until=run.completed)
    assert run.status is RunStatus.SUCCEEDED
    step = run.steps[0]
    assert step.attempts == 3
    assert [a.outcome for a in step.attempt_history] == [
        "unavailable", "unavailable", "succeeded",
    ]
    # two connect timeouts (2 s) + two retry waits (10 s) + action 5 s
    assert env.now >= 2 * 2.0 + 2 * 10.0 + 5.0
    assert svc.dead_letters == []


def test_critical_exhaustion_dead_letters_never_hangs():
    env = Environment()
    provider = FlakyProvider(env, fail_forever=True)
    policy = RetryPolicy(max_attempts=2, backoff=ConstantBackoff(5.0), critical=True)
    svc, token, flow_id = _flows(env, provider, policy)
    run = svc.run_flow(token, flow_id, {})
    env.run()
    assert run.status is RunStatus.FAILED  # terminal, not hung-ACTIVE
    assert run.error and "unavailable" in run.error
    assert len(svc.dead_letters) == 1
    dead = svc.dead_letters[0]
    assert dead.run_id == run.run_id
    assert len(dead.attempts) == 2
    assert all(a.outcome == "unavailable" for a in dead.attempts)


def test_noncritical_exhaustion_degrades_and_backlogs():
    env = Environment()
    provider = FlakyProvider(env, fail_forever=True)
    policy = RetryPolicy(max_attempts=2, backoff=ConstantBackoff(5.0), critical=False)
    svc, token, flow_id = _flows(env, provider, policy)
    run = svc.run_flow(token, flow_id, {})
    env.run(until=run.completed)
    assert run.status is RunStatus.SUCCEEDED  # the run survives
    assert run.degraded
    assert run.steps[0].degraded
    assert svc.dead_letters == []
    assert len(svc.backlog) == 1
    entry = svc.backlog[0]
    assert entry.run_id == run.run_id and not entry.recovered


def test_attempt_timeout_bounds_a_stuck_action():
    env = Environment()
    provider = FlakyProvider(env, down=0, duration=1e9)  # never finishes
    policy = RetryPolicy(
        max_attempts=1, backoff=ConstantBackoff(1.0), attempt_timeout_s=30.0
    )
    svc, token, flow_id = _flows(env, provider, policy)
    run = svc.run_flow(token, flow_id, {})
    env.run()
    assert run.status is RunStatus.FAILED
    assert len(svc.dead_letters) == 1
    assert svc.dead_letters[0].attempts[0].outcome == "timeout"
    assert env.now < 100.0  # the deadline fired, not the action


def test_default_policy_is_single_attempt():
    env = Environment()
    svc = FlowsService(env, AuthClient(), RngRegistry(0))
    policy = svc.retry_policy("anything")
    assert policy.max_attempts == 1
    assert policy.attempt_timeout_s is None
    assert policy.critical


# -- chaos-disabled bit-identity -----------------------------------------------


def test_no_chaos_campaign_is_bit_identical():
    base = run_campaign("hyperspectral", duration_s=400.0, seed=3, obs=True)
    off = run_campaign(
        "hyperspectral", duration_s=400.0, seed=3, obs=True, chaos=NO_CHAOS
    )
    assert off.chaos is None  # the controller is never even built
    assert campaign_trace(base) == campaign_trace(off)
    spans = lambda r: [
        (s.name, s.start, s.end, tuple(sorted(s.attrs.items())))
        for s in r.testbed.obs.tracer.spans
    ]
    assert spans(base) == spans(off)
    assert base.table1() == off.table1()


# -- scenario determinism and the no-hung-runs guarantee -----------------------


def _fingerprint(result):
    flows = result.testbed.flows
    return {
        "injections": result.chaos.injections,
        "breakdown": delivery_breakdown(result),
        "dead_letters": [d.summary() for d in flows.dead_letters],
        "degraded": sorted(r.run_id for r in result.runs if r.degraded),
        "retries": sum(
            max(0, s.attempts - 1) for r in flows.runs for s in r.steps
        ),
        "backlog": [
            (e.run_id, e.state, e.recovered, e.caught_up_at) for e in flows.backlog
        ],
    }


@pytest.fixture(scope="module")
def outage_results():
    kw = dict(use_case="hyperspectral", duration_s=1800.0, seed=5)
    return run_chaos_campaign("outage", **kw), run_chaos_campaign("outage", **kw)


def test_outage_scenario_deterministic_under_seed(outage_results):
    a, b = outage_results
    assert _fingerprint(a) == _fingerprint(b)
    assert a.chaos.report() == b.chaos.report()


def test_outage_scenario_no_hung_runs(outage_results):
    result, _ = outage_results
    assert all(r.status.terminal for r in result.runs)
    breakdown = delivery_breakdown(result)
    assert breakdown["still_active"] == 0
    assert breakdown["runs"] > 0
    assert (
        breakdown["delivered"]
        + breakdown["degraded"]
        + breakdown["dead_lettered"]
        + breakdown["failed_other"]
    ) == breakdown["runs"]


def test_outage_scenario_actually_injects(outage_results):
    result, _ = outage_results
    report = result.chaos.report()
    kinds = {inj["kind"] for inj in report["injections"]}
    assert "outage_start" in kinds and "outage_end" in kinds
    assert sum(report["gate_rejections"].values()) > 0
    # every backlogged step either caught up or carries an error
    assert report["backlog_pending"] == 0


def test_unknown_scenario_rejected():
    with pytest.raises(ChaosError, match="unknown scenario"):
        run_chaos_campaign("nope", duration_s=10.0)


# -- watcher crash mid-campaign ------------------------------------------------


def test_watcher_crash_no_duplicate_no_lost_dispatch(tmp_path):
    """Kill the observer mid-campaign and restart it from a file-backed
    CheckpointStore: every dataset the instrument produced is dispatched
    into exactly one flow — none doubled by the restart replay, none
    lost to the downtime window."""
    from repro.chaos import scenario
    from repro.watcher import CheckpointStore

    checkpoint = CheckpointStore(tmp_path / "ckpt.json")
    result = run_campaign(
        "hyperspectral",
        duration_s=1800.0,
        seed=7,
        chaos=scenario("watcher-crash"),
        checkpoint=checkpoint,
    )
    result.testbed.env.run()  # drain

    crashes = [
        inj for inj in result.chaos.injections
        if inj["kind"] in ("watcher_crash", "watcher_restart")
    ]
    assert len(crashes) == 2  # the crash happened and the restart replayed

    produced = [
        f.path for f in result.observer.vfs.listdir(result.observer.prefix)
        if f.path.endswith(".emd")
    ]
    dispatched = sorted(r.input["source_path"] for r in result.runs)
    assert len(dispatched) == len(set(dispatched))  # no duplicates
    assert sorted(produced) == dispatched  # no losses
    # the replay hit the checkpoint for files dispatched before the crash
    assert result.app.skipped > 0
    assert all(r.status.terminal for r in result.runs)
