"""Unit and property tests for the DES kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt


def test_time_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(5.5)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [5.5]


def test_timeout_value_passed_through_yield():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1, value="payload")
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def proc(env, name, delays):
        for d in delays:
            yield env.timeout(d)
            log.append((env.now, name))

    env.process(proc(env, "a", [2, 2]))
    env.process(proc(env, "b", [1, 1, 1]))
    env.run()
    assert log == [(1, "b"), (2, "a"), (2, "b"), (3, "b"), (4, "a")]


def test_same_time_fifo_order():
    """Events scheduled for the same instant fire in creation order."""
    env = Environment()
    log = []

    def proc(env, name):
        yield env.timeout(1)
        log.append(name)

    for name in "abcde":
        env.process(proc(env, name))
    env.run()
    assert log == list("abcde")


def test_run_until_time_stops_clock():
    env = Environment()
    ticks = []

    def clock(env):
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(clock(env))
    env.run(until=3.5)
    assert ticks == [1, 2, 3]
    assert env.now == 3.5


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "result"

    p = env.process(proc(env))
    assert env.run(until=p) == "result"
    assert env.now == 2


def test_run_until_past_raises():
    env = Environment(initial_time=10)
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_run_until_never_triggered_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError, match="never triggered"):
        env.run(until=ev)


def test_event_succeed_delivers_value():
    env = Environment()
    got = []

    def waiter(env, ev):
        got.append((yield ev))

    def firer(env, ev):
        yield env.timeout(3)
        ev.succeed(42)

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(firer(env, ev))
    env.run()
    assert got == [42]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError())


def test_failed_event_throws_into_process():
    env = Environment()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(waiter(env, ev))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_escapes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("kaput")

    env.process(bad(env))
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_undefused_failed_event_escapes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody caught me"))
    with pytest.raises(RuntimeError, match="nobody caught me"):
        env.run()


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    log = []

    def late(env, ev):
        yield env.timeout(5)
        v = yield ev  # already fired at t=1
        log.append((env.now, v))

    ev = env.event()

    def firer(env, ev):
        yield env.timeout(1)
        ev.succeed("early")

    env.process(firer(env, ev))
    env.process(late(env, ev))
    env.run()
    assert log == [(5, "early")]


def test_yield_non_event_raises_inside_process():
    env = Environment()
    caught = []

    def proc(env):
        try:
            yield 42
        except SimulationError as exc:
            caught.append("non-event" in str(exc))

    env.process(proc(env))
    env.run()
    assert caught == [True]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def attacker(env, v):
        yield env.timeout(4)
        v.interrupt("preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(4, "preempted")]


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_return_value_is_event_value():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2)
        return 99

    def parent(env):
        results.append((yield env.process(child(env))))

    env.process(parent(env))
    env.run()
    assert results == [99]


def test_all_of_waits_for_slowest():
    env = Environment()
    out = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        res = yield AllOf(env, [t1, t2])
        out.append((env.now, sorted(res.values())))

    env.process(proc(env))
    env.run()
    assert out == [(5, ["a", "b"])]


def test_any_of_fires_on_fastest():
    env = Environment()
    out = []

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        res = yield AnyOf(env, [t1, t2])
        out.append((env.now, list(res.values())))

    env.process(proc(env))
    env.run()
    assert out == [(1, ["fast"])]


def test_empty_all_of_fires_immediately():
    env = Environment()
    out = []

    def proc(env):
        res = yield AllOf(env, [])
        out.append((env.now, res))

    env.process(proc(env))
    env.run()
    assert out == [(0, {})]


def test_condition_failure_propagates():
    env = Environment()
    caught = []

    def proc(env, ev):
        try:
            yield AllOf(env, [env.timeout(10), ev])
        except RuntimeError:
            caught.append(env.now)

    ev = env.event()
    env.process(proc(env, ev))

    def failer(env, ev):
        yield env.timeout(2)
        ev.fail(RuntimeError("part failed"))

    env.process(failer(env, ev))
    env.run()
    assert caught == [2]


def test_step_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=40))
def test_events_fire_in_nondecreasing_time_order(delays):
    """Whatever the scheduling order, observation times are sorted."""
    env = Environment()
    observed = []

    def proc(env, d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(min_value=0.01, max_value=100, allow_nan=False), min_size=1, max_size=5),
        min_size=1,
        max_size=10,
    )
)
def test_total_elapsed_equals_max_process_span(delay_chains):
    """The clock ends at the longest sequential chain of timeouts."""
    env = Environment()

    def proc(env, chain):
        for d in chain:
            yield env.timeout(d)

    for chain in delay_chains:
        env.process(proc(env, chain))
    env.run()
    assert env.now == pytest.approx(max(sum(c) for c in delay_chains))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=50))
def test_determinism_identical_runs(n):
    """Two environments fed identical programs produce identical traces."""

    def build():
        env = Environment()
        trace = []

        def proc(env, i):
            yield env.timeout(i % 7)
            trace.append((env.now, i))
            yield env.timeout((i * 3) % 5)
            trace.append((env.now, -i))

        for i in range(n):
            env.process(proc(env, i))
        env.run()
        return trace

    assert build() == build()


# -- event cancellation --------------------------------------------------------


def test_cancelled_timeout_never_fires():
    env = Environment()
    fired = []
    doomed = env.timeout(5.0)
    doomed.callbacks.append(lambda e: fired.append("doomed"))
    keeper = env.timeout(3.0)
    keeper.callbacks.append(lambda e: fired.append("keeper"))
    env.cancel(doomed)
    env.run()
    assert fired == ["keeper"]
    assert env.now == 3.0  # the clock never advanced to the cancelled event


def test_peek_skips_cancelled_events():
    env = Environment()
    first = env.timeout(1.0)
    env.timeout(2.0)
    env.cancel(first)
    assert env.peek() == 2.0


def test_cancel_is_idempotent_and_queue_compacts():
    env = Environment()
    timeouts = [env.timeout(100.0 + i) for i in range(100)]
    for t in timeouts:
        env.cancel(t)
        env.cancel(t)  # idempotent
    # Tombstone compaction keeps the heap bounded by live entries.
    assert len(env._queue) < 60
    env.run()
    assert env.now == 0.0  # nothing ever fired


def test_cancel_processed_event_raises():
    env = Environment()
    t = env.timeout(1.0)
    env.run()
    with pytest.raises(SimulationError, match="processed"):
        env.cancel(t)


def test_cancel_untriggered_event_raises():
    env = Environment()
    e = env.event()  # never scheduled
    with pytest.raises(SimulationError, match="unscheduled"):
        env.cancel(e)


def test_run_completes_when_tail_is_all_cancelled():
    """run() must not raise 'no more events' when only tombstones remain."""
    env = Environment()
    live = env.timeout(1.0)
    stale = [env.timeout(50.0) for _ in range(3)]
    for t in stale:
        env.cancel(t)
    env.run()
    assert live.processed
    assert env.now == 1.0
