"""Tests for the visualization substrate."""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.viz import (
    BoxStats,
    annotate_frame,
    apply_colormap,
    bar_chart,
    box_chart,
    draw_box,
    encode_png,
    image_figure,
    line_chart,
    nice_ticks,
    normalize,
    png_dimensions,
    to_rgb,
    write_png,
)


# -- PNG ---------------------------------------------------------------------


def decode_png_pixels(data: bytes) -> np.ndarray:
    """Tiny reference decoder for filter-0 PNGs (test-only)."""
    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    pos = 8
    w = h = None
    color_type = None
    idat = b""
    while pos < len(data):
        length = int.from_bytes(data[pos : pos + 4], "big")
        kind = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        if kind == b"IHDR":
            w = int.from_bytes(payload[0:4], "big")
            h = int.from_bytes(payload[4:8], "big")
            color_type = payload[9]
        elif kind == b"IDAT":
            idat += payload
        pos += 12 + length
    raw = zlib.decompress(idat)
    channels = 3 if color_type == 2 else 1
    rows = np.frombuffer(raw, dtype=np.uint8).reshape(h, 1 + w * channels)
    assert (rows[:, 0] == 0).all()  # filter byte 0
    pix = rows[:, 1:]
    return pix.reshape(h, w, channels) if channels == 3 else pix.reshape(h, w)


def test_png_grayscale_roundtrip():
    img = np.arange(0, 250, dtype=np.uint8).reshape(25, 10)
    data = encode_png(img)
    assert png_dimensions(data) == (10, 25)
    np.testing.assert_array_equal(decode_png_pixels(data), img)


def test_png_rgb_roundtrip():
    rng = np.random.default_rng(0)
    img = rng.integers(0, 256, (8, 12, 3), dtype=np.uint8)
    data = encode_png(img)
    assert png_dimensions(data) == (12, 8)
    np.testing.assert_array_equal(decode_png_pixels(data), img)


def test_png_rejects_bad_inputs():
    with pytest.raises(ValueError):
        encode_png(np.zeros((4, 4), dtype=np.float64))
    with pytest.raises(ValueError):
        encode_png(np.zeros((4, 4, 2), dtype=np.uint8))
    with pytest.raises(ValueError):
        encode_png(np.zeros((0, 4), dtype=np.uint8))
    with pytest.raises(ValueError):
        png_dimensions(b"not a png")


def test_write_png(tmp_path):
    path = tmp_path / "x.png"
    write_png(path, np.zeros((4, 4), dtype=np.uint8))
    assert png_dimensions(path.read_bytes()) == (4, 4)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 30), st.integers(1, 30), st.booleans(), st.integers(0, 2**31))
def test_png_roundtrip_property(h, w, rgb, seed):
    rng = np.random.default_rng(seed)
    shape = (h, w, 3) if rgb else (h, w)
    img = rng.integers(0, 256, shape, dtype=np.uint8)
    np.testing.assert_array_equal(decode_png_pixels(encode_png(img)), img)


# -- colormaps -----------------------------------------------------------------


def test_normalize_range():
    v = normalize(np.array([2.0, 4.0, 6.0]))
    np.testing.assert_allclose(v, [0, 0.5, 1.0])


def test_normalize_constant_input():
    np.testing.assert_array_equal(normalize(np.full(5, 3.0)), np.zeros(5))


def test_apply_colormap_endpoints():
    rgb = apply_colormap(np.array([0.0, 1.0]), "viridis")
    np.testing.assert_array_equal(rgb[0], [68, 1, 84])  # viridis low
    np.testing.assert_array_equal(rgb[1], [253, 231, 37])  # viridis high


def test_apply_colormap_gray_is_linear():
    rgb = apply_colormap(np.linspace(0, 1, 11), "gray")
    assert rgb.shape == (11, 3)
    # monotone non-decreasing in every channel
    assert (np.diff(rgb.astype(int), axis=0) >= 0).all()


def test_apply_colormap_unknown_name():
    with pytest.raises(ValueError, match="unknown colormap"):
        apply_colormap(np.zeros(3), "jet2000")


def test_apply_colormap_2d_shape():
    out = apply_colormap(np.zeros((5, 7)), "inferno")
    assert out.shape == (5, 7, 3)
    assert out.dtype == np.uint8


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31), st.sampled_from(["viridis", "inferno", "gray"]))
def test_colormap_output_bounds(seed, name):
    rng = np.random.default_rng(seed)
    vals = rng.normal(size=(4, 4)) * rng.uniform(0.1, 100)
    out = apply_colormap(vals, name)
    assert out.dtype == np.uint8
    assert out.shape == (4, 4, 3)


# -- SVG charts ----------------------------------------------------------------


def test_nice_ticks_cover_range():
    ticks = nice_ticks(0, 100)
    assert ticks[0] >= 0 and ticks[-1] <= 100
    assert len(ticks) >= 3
    steps = np.diff(ticks)
    assert np.allclose(steps, steps[0])


def test_nice_ticks_degenerate():
    assert nice_ticks(5, 5)  # non-empty
    assert nice_ticks(float("nan"), 1) == [0.0]


def test_line_chart_structure():
    svg = line_chart(
        [("spectrum", [0, 1, 2], [5.0, 3.0, 4.0])],
        title="Spectrum",
        xlabel="energy (eV)",
        ylabel="counts",
    )
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert "polyline" in svg
    assert "Spectrum" in svg
    assert "energy (eV)" in svg


def test_line_chart_multi_series_legend():
    svg = line_chart(
        [("a", [0, 1], [0, 1]), ("b", [0, 1], [1, 0])],
    )
    assert svg.count("polyline") == 2
    assert "&gt;" not in svg  # no stray escapes from plain labels


def test_line_chart_rejects_empty():
    with pytest.raises(ValueError):
        line_chart([])
    with pytest.raises(ValueError):
        line_chart([("x", [], [])])


def test_line_chart_escapes_labels():
    svg = line_chart([("a<b>&", [0, 1], [0, 1])], title="t<i>&")
    assert "a&lt;b&gt;&amp;" in svg
    assert "t&lt;i&gt;&amp;" in svg


def test_bar_chart_structure():
    svg = bar_chart(["hyper", "spatio"], [6.42, 21.72], ylabel="GB")
    assert svg.count("<rect") >= 3  # background + frame + 2 bars
    assert "hyper" in svg and "spatio" in svg


def test_bar_chart_validates():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1, 2])
    with pytest.raises(ValueError):
        bar_chart([], [])


def test_box_stats_from_samples():
    b = BoxStats.from_samples("transfer", [1, 2, 3, 4, 100])
    assert b.minimum == 1 and b.maximum == 100
    assert b.median == 3


def test_box_stats_empty_rejected():
    with pytest.raises(ValueError):
        BoxStats.from_samples("x", [])


def test_box_chart_structure():
    boxes = [
        BoxStats.from_samples("Transfer", [10, 12, 14, 18]),
        BoxStats.from_samples("Analysis", [3, 4, 5, 6]),
    ]
    svg = box_chart(boxes, title="Runtime", ylabel="seconds")
    assert "Transfer" in svg and "Analysis" in svg
    assert svg.count("<rect") >= 4

    with pytest.raises(ValueError):
        box_chart([])


def test_image_figure_embeds_png():
    png = encode_png(np.zeros((10, 20), dtype=np.uint8))
    svg = image_figure(png, title="Intensity", caption="sum over energy")
    assert "data:image/png;base64," in svg
    assert "Intensity" in svg and "sum over energy" in svg


# -- annotation -----------------------------------------------------------------


class _Box:
    def __init__(self, x0, y0, x1, y1, confidence=1.0):
        self.x0, self.y0, self.x1, self.y1 = x0, y0, x1, y1
        self.confidence = confidence


def test_to_rgb_shapes():
    g = np.zeros((4, 5), dtype=np.uint8)
    rgb = to_rgb(g)
    assert rgb.shape == (4, 5, 3)
    again = to_rgb(rgb)
    assert again.shape == (4, 5, 3)
    with pytest.raises(ValueError):
        to_rgb(np.zeros((4, 5), dtype=np.float32))


def test_draw_box_edges_only():
    img = np.zeros((10, 10, 3), dtype=np.uint8)
    draw_box(img, 2, 2, 7, 7, color=(255, 0, 0))
    assert (img[2, 2:8, 0] == 255).all()  # top edge
    assert (img[7, 2:8, 0] == 255).all()  # bottom edge
    assert (img[2:8, 2, 0] == 255).all()  # left
    assert (img[2:8, 7, 0] == 255).all()  # right
    assert img[4, 4].sum() == 0  # interior untouched


def test_draw_box_clips_out_of_bounds():
    img = np.zeros((5, 5, 3), dtype=np.uint8)
    draw_box(img, -10, -10, 100, 100)
    draw_box(img, 100, 100, 200, 200)  # fully outside: no-op
    assert img.shape == (5, 5, 3)


def test_annotate_frame_filters_by_confidence():
    frame = np.zeros((20, 20), dtype=np.uint8)
    boxes = [_Box(1, 1, 5, 5, confidence=0.9), _Box(10, 10, 15, 15, confidence=0.1)]
    rgb = annotate_frame(frame, boxes, confidence_threshold=0.5)
    assert rgb[1, 1].sum() > 0  # high-confidence drawn
    assert rgb[10, 10].sum() == 0  # low-confidence skipped
