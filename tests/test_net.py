"""Tests for topology and the max–min fair network fabric."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EndpointError
from repro.net import NetworkFabric, Topology, max_min_fair_rates
from repro.net.fabric import Stream
from repro.sim import Environment
from repro.units import MB, Gbps, Mbps


def star_topology():
    """user -- switch(1Gbps) -- backbone(200Gbps) -- eagle."""
    t = Topology()
    t.add_node("user")
    t.add_node("switch", kind="switch")
    t.add_node("core", kind="switch")
    t.add_node("eagle")
    t.add_link("user", "switch", Gbps(1), latency_s=0.0005)
    t.add_link("switch", "core", Gbps(200), latency_s=0.001)
    t.add_link("core", "eagle", Gbps(200), latency_s=0.001)
    return t


# -- topology -------------------------------------------------------------------


def test_route_and_latency():
    t = star_topology()
    route = t.route("user", "eagle")
    assert len(route) == 3
    assert t.path_latency("user", "eagle") == pytest.approx(0.0025)
    assert t.bottleneck_capacity("user", "eagle") == Gbps(1)


def test_route_same_node_empty():
    t = star_topology()
    assert t.route("user", "user") == []
    assert t.bottleneck_capacity("user", "user") == float("inf")


def test_no_route_raises():
    t = Topology()
    t.add_node("a")
    t.add_node("b")
    with pytest.raises(EndpointError, match="no route"):
        t.route("a", "b")


def test_unknown_node_raises():
    t = star_topology()
    with pytest.raises(EndpointError):
        t.route("user", "mars")
    with pytest.raises(EndpointError):
        t.node_kind("mars")


def test_duplicate_node_and_link_rejected():
    t = Topology()
    t.add_node("a")
    with pytest.raises(EndpointError):
        t.add_node("a")
    t.add_node("b")
    t.add_link("a", "b", 100)
    with pytest.raises(EndpointError):
        t.add_link("b", "a", 100)
    with pytest.raises(EndpointError):
        t.add_link("a", "a", 100)
    with pytest.raises(EndpointError):
        t.add_link("a", "b", 0)


# -- max-min fairness -------------------------------------------------------------


def _mk_stream(sid, links, eff=1.0):
    return Stream(
        stream_id=sid,
        src="s",
        dst="d",
        links=tuple(links),
        remaining_bytes=1.0,
        done=None,  # not used by the allocator
        efficiency=eff,
    )


def test_single_stream_gets_bottleneck():
    t = star_topology()
    s = _mk_stream(1, t.route("user", "eagle"))
    rates = max_min_fair_rates([s], {l.key: l.capacity_bps for l in t.links()})
    assert rates[1] == pytest.approx(Gbps(1))


def test_equal_share_on_shared_bottleneck():
    t = star_topology()
    links = t.route("user", "eagle")
    streams = [_mk_stream(i, links) for i in range(4)]
    rates = max_min_fair_rates(
        streams, {l.key: l.capacity_bps for l in t.links()}
    )
    for i in range(4):
        assert rates[i] == pytest.approx(Gbps(1) / 4)


def test_unequal_paths_water_filling():
    # a--m capacity 10; b--m capacity 100; m--d capacity 100.
    t = Topology()
    for n in "ambd":
        t.add_node(n)
    t.add_link("a", "m", 10)
    t.add_link("b", "m", 100)
    t.add_link("m", "d", 100)
    s1 = _mk_stream(1, t.route("a", "d"))  # limited to 10 by a--m
    s2 = _mk_stream(2, t.route("b", "d"))
    rates = max_min_fair_rates(
        [s1, s2], {l.key: l.capacity_bps for l in t.links()}
    )
    assert rates[1] == pytest.approx(10)
    # s2 gets the leftover on m--d: min(100 - 50?,...) — progressive
    # filling: round 1 fair share on m--d is 50, a--d is 10 → freeze s1 at
    # 10, m--d left 90 → s2 frozen at min(90, 100) = 90.
    assert rates[2] == pytest.approx(90)


def test_efficiency_scales_achieved_rate():
    t = star_topology()
    s = _mk_stream(1, t.route("user", "eagle"), eff=0.5)
    rates = max_min_fair_rates([s], {l.key: l.capacity_bps for l in t.links()})
    assert rates[1] == pytest.approx(Gbps(1) * 0.5)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=12))
def test_fairness_never_oversubscribes_property(n_streams):
    """Property: total allocation per link never exceeds its capacity."""
    t = star_topology()
    links = t.route("user", "eagle")
    streams = [_mk_stream(i, links) for i in range(n_streams)]
    caps = {l.key: l.capacity_bps for l in t.links()}
    rates = max_min_fair_rates(streams, caps)
    per_link: dict = {}
    for s in streams:
        for l in s.links:
            per_link[l.key] = per_link.get(l.key, 0.0) + rates[s.stream_id]
    for key, used in per_link.items():
        assert used <= caps[key] * (1 + 1e-9)
    # Work conservation on the single bottleneck: fully used.
    assert per_link[("switch", "user")] == pytest.approx(Gbps(1))


# -- fabric (DES) -------------------------------------------------------------------


def test_single_transfer_time():
    env = Environment()
    fabric = NetworkFabric(env, star_topology())
    done = fabric.transfer("user", "eagle", MB(125))  # 125 MB at 1 Gbps = 1 s

    result = env.run(until=done)
    assert result.remaining_bytes <= 1e-3
    assert env.now == pytest.approx(1.0 + 0.0025, abs=1e-3)


def test_two_transfers_share_bandwidth():
    env = Environment()
    fabric = NetworkFabric(env, star_topology())
    d1 = fabric.transfer("user", "eagle", MB(125))
    d2 = fabric.transfer("user", "eagle", MB(125))
    ends = []

    def waiter(env, ev, name):
        yield ev
        ends.append((name, env.now))

    env.process(waiter(env, d1, "a"))
    env.process(waiter(env, d2, "b"))
    env.run()
    # Both share 1 Gbps: each runs ~2 s instead of 1 s.
    for _, end in ends:
        assert 1.9 < end < 2.2


def test_staggered_transfer_speeds_up_after_first_finishes():
    env = Environment()
    fabric = NetworkFabric(env, star_topology())
    times = {}

    def run(env):
        d1 = fabric.transfer("user", "eagle", MB(125))
        yield env.timeout(0.5)
        d2 = fabric.transfer("user", "eagle", MB(125))
        yield d1
        times["t1"] = env.now
        yield d2
        times["t2"] = env.now

    env.process(run(env))
    env.run()
    # t1: 0.5 s alone (62.5 MB) + 1 s shared (62.5 MB at half rate) ≈ 1.5 s
    assert times["t1"] == pytest.approx(1.5, abs=0.02)
    # t2: shared for 1 s (62.5 MB), alone for 0.5 s ≈ ends at 2.0 s
    assert times["t2"] == pytest.approx(2.0, abs=0.02)


def test_zero_byte_transfer_completes_after_latency():
    env = Environment()
    fabric = NetworkFabric(env, star_topology())
    done = fabric.transfer("user", "eagle", 0)
    env.run(until=done)
    assert env.now == pytest.approx(0.0025)


def test_same_host_transfer_instant():
    env = Environment()
    fabric = NetworkFabric(env, star_topology())
    done = fabric.transfer("user", "user", MB(500))
    env.run(until=done)
    assert env.now == pytest.approx(0.0)


def test_transfer_validation():
    env = Environment()
    fabric = NetworkFabric(env, star_topology())
    with pytest.raises(EndpointError):
        fabric.transfer("user", "eagle", -1)
    with pytest.raises(EndpointError):
        fabric.transfer("user", "eagle", 10, efficiency=0)
    with pytest.raises(EndpointError):
        fabric.transfer("user", "eagle", 10, efficiency=1.5)


def test_throughput_observable():
    env = Environment()
    fabric = NetworkFabric(env, star_topology())
    fabric.transfer("user", "eagle", MB(1250))
    seen = []

    def probe(env):
        yield env.timeout(1.0)
        seen.append(fabric.throughput("user", "eagle"))

    env.process(probe(env))
    env.run()
    assert seen[0] == pytest.approx(Gbps(1), rel=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=500),  # MB
            st.floats(min_value=0, max_value=10),  # start offset s
        ),
        min_size=1,
        max_size=8,
    )
)
def test_fabric_conservation_property(jobs):
    """Property: every byte arrives, and no transfer beats the line rate."""
    env = Environment()
    t = star_topology()
    fabric = NetworkFabric(env, t)
    records = []

    def submit(env, size_mb, delay):
        yield env.timeout(delay)
        start = env.now
        stream = yield fabric.transfer("user", "eagle", MB(size_mb))
        elapsed = env.now - start
        records.append((size_mb, elapsed))

    for size_mb, delay in jobs:
        env.process(submit(env, size_mb, delay))
    env.run()
    assert len(records) == len(jobs)
    for size_mb, elapsed in records:
        min_time = MB(size_mb) / Gbps(1)  # line-rate lower bound
        assert elapsed >= min_time * 0.999


# -- event-queue hygiene under mid-flight admissions ---------------------------


def test_repeated_admissions_do_not_bloat_the_event_queue():
    """Each mid-flight admission abandons the scheduler's per-iteration
    completion timer.  Those timers used to pile up in the event heap
    (one per admission, alive until their far-future deadline); the
    fabric now withdraws stale timers, so heap size stays bounded by
    live work, not admission count."""
    env = Environment()
    t = star_topology()
    fabric = NetworkFabric(env, t)

    # One huge stream keeps the completion timer far in the future.
    big = fabric.transfer("user", "eagle", MB(8000))

    n_admissions = 100
    done_small = []

    def trickle():
        for _ in range(n_admissions):
            yield env.timeout(0.2)
            stream = yield fabric.transfer("user", "eagle", MB(0.1))
            done_small.append(stream)

    peak = [0]

    def monitor():
        while True:
            peak[0] = max(peak[0], len(env._queue))
            yield env.timeout(0.1)

    env.process(trickle())
    mon = env.process(monitor())
    env.run(until=big)
    assert len(done_small) == n_admissions
    # Live events at any instant: a few per active stream + the monitor.
    # With the leak this peaks at O(n_admissions) (~100+).
    assert peak[0] < 25, f"event queue peaked at {peak[0]} entries"


def test_cancelled_fabric_timers_do_not_fire_spuriously():
    """After the big stream's rate changes, the stale timer must not
    wake the scheduler at the obsolete deadline."""
    env = Environment()
    t = star_topology()
    fabric = NetworkFabric(env, t)
    done_a = fabric.transfer("user", "eagle", MB(100))

    def second():
        yield env.timeout(0.1)
        yield fabric.transfer("user", "eagle", MB(100))

    env.process(second())
    env.run()
    # Both streams completed; queue fully drained (no orphan events).
    assert done_a.processed
    assert len(env._queue) == env._cancelled_count == 0
