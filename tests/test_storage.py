"""Tests for the virtual filesystem."""

from __future__ import annotations

import pytest

from repro.errors import EndpointError
from repro.storage import VirtualFS, VirtualFile


def test_create_and_stat():
    fs = VirtualFS("eagle")
    f = fs.create("/transfer/a.emd", size_bytes=91e6, created_at=5.0)
    assert fs.exists("/transfer/a.emd")
    got = fs.stat("transfer/a.emd")  # normalization: leading slash optional
    assert got is f
    assert got.size_bytes == 91e6
    assert got.created_at == 5.0


def test_duplicate_create_rejected_unless_overwrite():
    fs = VirtualFS("x")
    fs.create("/a", 1, created_at=0)
    with pytest.raises(EndpointError, match="already exists"):
        fs.create("/a", 1, created_at=1)
    f2 = fs.create("/a", 2, created_at=1, overwrite=True)
    assert fs.stat("/a") is f2


def test_negative_size_rejected():
    fs = VirtualFS("x")
    with pytest.raises(EndpointError):
        fs.create("/a", -5, created_at=0)


def test_root_path_rejected():
    fs = VirtualFS("x")
    with pytest.raises(EndpointError):
        fs.create("/", 1, created_at=0)


def test_stat_missing_raises():
    fs = VirtualFS("x")
    with pytest.raises(EndpointError, match="does not exist"):
        fs.stat("/nope")


def test_delete():
    fs = VirtualFS("x")
    fs.create("/a", 1, created_at=0)
    fs.delete("/a")
    assert not fs.exists("/a")
    with pytest.raises(EndpointError):
        fs.delete("/a")


def test_listdir_prefix():
    fs = VirtualFS("x")
    fs.create("/transfer/b.emd", 1, created_at=0)
    fs.create("/transfer/a.emd", 1, created_at=0)
    fs.create("/other/c.emd", 1, created_at=0)
    names = [f.path for f in fs.listdir("/transfer")]
    assert names == ["/transfer/a.emd", "/transfer/b.emd"]
    assert len(fs.listdir("/")) == 0 or True  # root prefix semantics tolerant


def test_total_bytes_and_len():
    fs = VirtualFS("x")
    fs.create("/a", 10, created_at=0)
    fs.create("/b", 32, created_at=0)
    assert len(fs) == 2
    assert fs.total_bytes == 42


def test_subscription_fires_on_create():
    fs = VirtualFS("x")
    seen = []
    unsub = fs.subscribe(lambda f: seen.append(f.path))
    fs.create("/a", 1, created_at=0)
    assert seen == ["/a"]
    unsub()
    fs.create("/b", 1, created_at=0)
    assert seen == ["/a"]
    unsub()  # double-unsubscribe is a no-op


def test_copy_in_preserves_checksum():
    src = VirtualFS("picoprobe")
    dst = VirtualFS("eagle")
    f = src.create("/transfer/a.emd", 91e6, created_at=0)
    seen = []
    dst.subscribe(lambda vf: seen.append(vf))
    g = dst.copy_in(f, "/eagle/data/a.emd", now=42.0)
    assert g.checksum == f.checksum
    assert g.size_bytes == f.size_bytes
    assert g.created_at == 42.0
    assert g.path == "/eagle/data/a.emd"
    assert seen == [g]


def test_content_checksum_deterministic():
    a = VirtualFile.content_checksum("seed", 100)
    b = VirtualFile.content_checksum("seed", 100)
    c = VirtualFile.content_checksum("seed", 101)
    assert a == b != c


def test_iteration_sorted():
    fs = VirtualFS("x")
    fs.create("/b", 1, created_at=0)
    fs.create("/a", 1, created_at=0)
    assert [f.path for f in fs] == ["/a", "/b"]
