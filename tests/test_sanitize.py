"""The DES schedule-race sanitizer: cohort tracking, causality, the
tie-break reversal, and the campaign-level driver."""

from __future__ import annotations

import pytest

from repro.core.sanitize import SanitizeResult, campaign_trace, sanitize_campaign
from repro.errors import SimulationError
from repro.lint import Severity
from repro.sim import NORMAL, URGENT, Environment, Resource, Store


# -- kernel plumbing ----------------------------------------------------------


def test_environment_rejects_unknown_tiebreak():
    with pytest.raises(SimulationError, match="tiebreak"):
        Environment(tiebreak="random")


def test_sanitizer_absent_by_default_and_touch_is_a_noop():
    env = Environment()
    assert env.sanitizer is None
    env.touch(object(), "w")  # must not raise with the sanitizer off


def test_lifo_tiebreak_reverses_same_tick_order_only():
    def run(tiebreak):
        env = Environment(tiebreak=tiebreak)
        log = []
        for name, delay in (("a", 1.0), ("b", 1.0), ("c", 2.0)):
            env.timeout(delay, name).callbacks.append(
                lambda event: log.append(event.value)
            )
        env.run()
        return log

    assert run("fifo") == ["a", "b", "c"]
    assert run("lifo") == ["b", "a", "c"]  # only the same-tick pair flips


def test_touch_rejects_bad_mode_and_ignores_setup_phase():
    env = Environment(sanitize=True)
    env.touch(object(), "w", label="setup")  # outside any firing: ignored
    assert env.sanitizer.races() == []

    def proc(env):
        yield env.timeout(1.0)
        env.touch(object(), "x")

    env.process(proc(env))
    with pytest.raises(ValueError, match="touch mode"):
        env.run()


# -- race detection -----------------------------------------------------------


def contention(tiebreak="fifo"):
    """Two processes, spawned in one firing, claim one Resource unit at
    the same tick — their requests land in the same (10.0, URGENT)
    initialization cohort and are ordered only by insertion sequence."""
    env = Environment(sanitize=True, tiebreak=tiebreak)
    pool = Resource(env, capacity=1)
    order = []

    def grab(env, name):
        with pool.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1.0)

    def driver(env):
        yield env.timeout(10.0)
        env.process(grab(env, "a"))
        env.process(grab(env, "b"))

    env.process(driver(env))
    env.run()
    return env, order


def test_same_tick_resource_contention_is_a_race():
    env, order = contention()
    races = env.sanitizer.races()
    assert len(races) == 1
    race = races[0]
    assert race.time == 10.0 and race.priority == URGENT
    assert race.obj == "Resource#1"
    assert [name for name, _ in race.actors] == [
        "Process(grab)#1",
        "Process(grab)#2",
    ]
    assert all(mode == "w" for _, mode in race.actors)
    assert "insertion sequence" in race.describe()


def test_the_reversed_tiebreak_actually_flips_the_racy_grant():
    _, fifo_order = contention("fifo")
    _, lifo_order = contention("lifo")
    assert fifo_order == ["a", "b"]
    assert lifo_order == ["b", "a"]


def test_same_tick_store_puts_from_two_processes_race():
    env = Environment(sanitize=True)
    store = Store(env)

    def producer(env, item):
        yield env.timeout(5.0)
        yield store.put(item)

    env.process(producer(env, "x"))
    env.process(producer(env, "y"))
    env.run()
    races = env.sanitizer.races()
    assert len(races) == 1
    assert races[0].obj == "Store#1"


def test_urgent_and_normal_cohorts_are_not_cross_flagged():
    # One writer lands at (t, URGENT), the other at (t, NORMAL): the
    # priority field orders them under every tie-break — no race.
    env = Environment(sanitize=True)
    store = Store(env)

    def normal_writer(env):
        yield env.timeout(3.0)
        store.put("n")

    def urgent_writer(env, victim):
        yield env.timeout(3.0)
        victim.interrupt("poke")  # delivery is URGENT at the same tick

    def victim(env):
        try:
            yield env.timeout(30.0)
        except Exception:
            store.put("u")
            yield env.timeout(0.5)

    v = env.process(victim(env))
    env.process(normal_writer(env))
    env.process(urgent_writer(env, v))
    env.run()
    # victim's put runs in the (3.0, URGENT) interrupt-delivery cohort,
    # normal_writer's in (3.0, NORMAL): distinct cohorts.
    assert env.sanitizer.races() == []


def test_causally_chained_same_tick_touches_are_not_races():
    # The gated-copier shape: a put resumes the consumer, whose re-armed
    # get touches the same store in the same cohort.  Chain, not race.
    env = Environment(sanitize=True)
    store = Store(env)
    got = []

    def producer(env):
        yield env.timeout(1.0)
        store.put("x")

    def consumer(env):
        item = yield store.get()
        got.append(item)
        store.get()  # re-arm immediately, same tick as the put

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["x"]
    assert env.sanitizer.races() == []


def test_single_actor_touching_twice_is_not_a_race():
    env = Environment(sanitize=True)
    pool = Resource(env, capacity=2)

    def hog(env):
        yield env.timeout(1.0)
        a = pool.request()
        yield a
        b = pool.request()
        yield b
        a.release()
        b.release()

    env.process(hog(env))
    env.run()
    assert env.sanitizer.races() == []


# -- campaign driver ----------------------------------------------------------


def test_campaign_trace_is_deterministic_and_nonempty():
    from repro.core import run_campaign

    a = campaign_trace(run_campaign("hyperspectral", duration_s=400.0, seed=3))
    b = campaign_trace(run_campaign("hyperspectral", duration_s=400.0, seed=3))
    assert a == b
    assert len(a) > 1 and a[-1].startswith("copier files=")


def test_sanitize_result_diagnostics_render_s901_and_s902():
    from repro.sim.sanitize import RaceReport

    race = RaceReport(
        time=4.0,
        priority=NORMAL,
        obj="Resource#1",
        actors=(("Process(a)#1", "w"), ("Process(b)#2", "w")),
    )
    result = SanitizeResult(
        campaign="demo",
        forward=None,
        reverse=None,
        races_forward=[race],
        races_reverse=[race],
        trace_forward=["line-1", "line-2"],
        trace_reverse=["line-1", "line-2-changed", "extra"],
    )
    assert not result.clean
    ds = result.diagnostics()
    ids = [d.rule_id for d in ds]
    assert ids.count("S901") == 1  # same hazard under both tie-breaks: deduped
    assert ids.count("S902") == 2  # one changed line, one extra line
    assert all(d.severity is Severity.ERROR for d in ds)
    assert all(d.path == "<campaign:demo>" for d in ds)
    divergence = next(d for d in ds if d.rule_id == "S902")
    assert divergence.line == 2 and "reversed tie-break" in divergence.message
