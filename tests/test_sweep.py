"""Tests for the parallel deterministic sweep runner.

The load-bearing property is merge determinism: a sweep fanned out over
worker processes must return outcomes payload-identical to the serial
loop, in variant order, no matter which worker finishes first.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.errors import ChaosError
from repro.core.sweep import (
    SweepVariant,
    campaign_grid,
    chaos_grid,
    render_sweep,
    run_sweep,
    run_variant,
)

#: Small but heterogeneous grid: clean + chaos, two seeds, both tie-breaks.
GRID = [
    SweepVariant(kind="campaign", use_case="hyperspectral", seed=1,
                 duration_s=900.0),
    SweepVariant(kind="campaign", use_case="hyperspectral", seed=2,
                 duration_s=900.0, tiebreak="lifo"),
    SweepVariant(kind="outage", use_case="hyperspectral", seed=1,
                 duration_s=900.0),
]


def test_parallel_equals_serial():
    serial = run_sweep(GRID, jobs=1)
    parallel = run_sweep(GRID, jobs=2)
    assert [o.payload() for o in parallel] == [o.payload() for o in serial]


def test_outcomes_preserve_variant_order():
    outcomes = run_sweep(GRID, jobs=2)
    assert [o.variant for o in outcomes] == GRID


def test_run_variant_is_reproducible():
    a, b = run_variant(GRID[2]), run_variant(GRID[2])
    assert a.payload() == b.payload()
    assert a.breakdown is not None  # chaos variants carry a breakdown
    assert run_variant(GRID[0]).breakdown is None


def test_grids():
    cg = campaign_grid(seeds=(1, 2), tiebreaks=("fifo", "lifo"))
    assert len(cg) == 2 * 2 * 2
    assert len({v.name for v in cg}) == len(cg)
    xg = chaos_grid(scenarios=("outage", "degraded-net"), seeds=(0,))
    assert [v.kind for v in xg] == ["outage", "degraded-net"]
    default = chaos_grid(seeds=(0,))
    assert [v.kind for v in default] == sorted(v.kind for v in default)
    with pytest.raises(ChaosError):  # validated before any worker spawns
        chaos_grid(scenarios=("outage", "bogus"), seeds=(0,))


def test_render_sweep_aggregates():
    outcomes = run_sweep(GRID[:1] + GRID[2:], jobs=1)
    text = render_sweep(outcomes)
    assert "campaign/hyperspectral-s1-fifo-900s" in text
    assert "aggregate:" in text and "delivered" in text


def test_sweep_cli_writes_deterministic_json(tmp_path, capsys):
    out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
    argv = [
        "sweep", "chaos", "--scenarios", "outage",
        "--seeds", "1", "--duration", "900", "--output",
    ]
    assert main(argv + [str(out1), "--jobs", "1"]) == 0
    assert main(argv + [str(out2), "--jobs", "2"]) == 0
    text = capsys.readouterr().out
    assert "outage/hyperspectral-s1-fifo-900s" in text
    assert json.loads(out1.read_text()) == json.loads(out2.read_text())
