"""Tests for campaign statistics (Table 1 / Fig. 4 aggregation)."""

from __future__ import annotations

import pytest

from repro.core.stats import Table1Row, fig4_samples, render_table1, table1_row
from repro.flows import FlowRun, RunStatus, StepRecord
from repro.sim import Environment


def make_run(runtime, actives, status=RunStatus.SUCCEEDED, start=0.0):
    """Hand-built FlowRun with the canonical three steps."""
    run = FlowRun(
        run_id="run-x",
        flow_title="t",
        input={},
        status=status,
        started_at=start,
        finished_at=start + runtime,
    )
    t = start
    for name, active in zip(("TransferData", "AnalyzeData", "PublishResults"), actives):
        step = StepRecord(
            name=name,
            provider="p",
            entered_at=t,
            submitted_at=t + 0.1,
            detected_at=t + active + 1.0,
            active_seconds=active,
        )
        run.steps.append(step)
        t += active + 1.0
    return run


def test_flow_run_aggregates():
    run = make_run(30.0, (15.0, 5.0, 1.0))
    assert run.runtime_seconds == 30.0
    assert run.active_seconds == 21.0
    assert run.overhead_seconds == 9.0
    assert run.overhead_fraction == pytest.approx(0.3)


def test_step_record_overhead_never_negative():
    step = StepRecord(
        name="s", provider="p", entered_at=0, submitted_at=0, detected_at=5,
        active_seconds=99.0,  # provider over-reports
    )
    assert step.overhead_seconds == 0.0


def test_table1_row_aggregation():
    runs = [
        make_run(30.0, (15, 5, 1)),
        make_run(40.0, (20, 6, 1)),
        make_run(50.0, (25, 7, 1)),
    ]
    row = table1_row("hyperspectral", 30.0, 91e6, runs)
    assert row.total_runs == 3
    assert row.min_runtime_s == 30 and row.max_runtime_s == 50
    assert row.mean_runtime_s == pytest.approx(40.0)
    assert row.total_data_gb == pytest.approx(0.273)
    assert row.median_overhead_s == pytest.approx(40 - 27)


def test_table1_excludes_failed_runs():
    runs = [
        make_run(30.0, (15, 5, 1)),
        make_run(500.0, (1, 1, 1), status=RunStatus.FAILED),
    ]
    row = table1_row("x", 30, 91e6, runs)
    assert row.total_runs == 1
    assert row.max_runtime_s == 30.0


def test_render_table1_multiple_columns():
    a = table1_row("hyperspectral", 30, 91e6, [make_run(30, (15, 5, 1))])
    b = table1_row("spatiotemporal", 120, 1200e6, [make_run(200, (150, 40, 1))])
    text = render_table1([a, b])
    assert "Hyperspectral" in text and "Spatiotemporal" in text
    lines = text.splitlines()
    # header + separator + 9 metrics
    assert len(lines) == 11
    # columns aligned: all lines equal width
    assert len({len(l) for l in lines}) == 1


def test_fig4_samples_skips_missing_steps_and_failed_runs():
    ok = make_run(30.0, (15, 5, 1))
    failed = make_run(10.0, (5, 1, 1), status=RunStatus.FAILED)
    partial = FlowRun(
        run_id="p", flow_title="t", input={}, status=RunStatus.SUCCEEDED,
        started_at=0, finished_at=12,
    )
    partial.steps.append(
        StepRecord(name="TransferData", provider="p", entered_at=0,
                   submitted_at=0, detected_at=10, active_seconds=9)
    )
    samples = fig4_samples([ok, failed, partial])
    assert len(samples["Transfer"]) == 2  # ok + partial
    assert len(samples["Analysis"]) == 1  # ok only
    assert len(samples["Active"]) == 2
    assert len(samples["Overhead"]) == 2


def test_table1_as_dict_rounding():
    row = Table1Row(
        use_case="x", start_period_s=30, transfer_volume_mb=91,
        total_data_gb=6.42555, min_runtime_s=29.4, mean_runtime_s=47.2,
        max_runtime_s=181.0, median_overhead_s=19.53, median_overhead_pct=49.23,
        total_runs=72,
    )
    d = row.as_dict()
    assert d["Total data transfer (GB)"] == 6.43
    assert d["Median overhead (%)"] == 49.2
    assert d["Min flow runtime (s)"] == 29
