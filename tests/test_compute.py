"""Tests for the compute service, endpoint agent, and batch scheduler."""

from __future__ import annotations

import pytest

from repro.auth import AuthClient
from repro.auth.identity import COMPUTE_SCOPE, TRANSFER_SCOPE
from repro.compute import (
    BatchScheduler,
    ComputeEndpoint,
    ComputeService,
    ComputeTaskStatus,
    constant_cost,
)
from repro.errors import (
    ComputeError,
    EndpointError,
    FunctionNotRegistered,
    PermissionDenied,
    SchedulerError,
)
from repro.rng import RngRegistry
from repro.sim import Environment


def make_world(
    n_nodes=2,
    queue_median=10.0,
    boot_median=20.0,
    env_cache=30.0,
    idle_timeout=300.0,
):
    env = Environment()
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [COMPUTE_SCOPE], now=0.0)
    rngs = RngRegistry(0)
    sched = BatchScheduler(
        env,
        n_nodes=n_nodes,
        queue_median_s=queue_median,
        queue_sigma=0.0,
        boot_median_s=boot_median,
        boot_sigma=0.0,
        rngs=rngs,
    )
    ep = ComputeEndpoint(
        env,
        "polaris",
        sched,
        env_cache_median_s=env_cache,
        env_cache_sigma=0.0,
        idle_timeout_s=idle_timeout,
        rngs=rngs,
    )
    service = ComputeService(env, auth, rngs, api_latency_s=0.0, latency_sigma=0.0)
    service.register_endpoint(ep)
    return env, service, token, ep, sched, auth, alice


def test_task_runs_function_and_returns_result():
    env, service, token, *_ = make_world()
    fid = service.register_function(lambda x: x * 2, constant_cost(5.0))
    tid = service.submit(token, "polaris", fid, 21)
    env.run(until=service.wait(tid))
    snap = service.get_task(token, tid)
    assert snap["status"] == "SUCCESS"
    assert snap["result"] == 42
    # queue 10 + boot 20 + env cache 30 + cost 5
    assert env.now == pytest.approx(65.0)


def test_cold_then_warm_node_reuse():
    env, service, token, ep, sched, *_ = make_world()
    fid = service.register_function(lambda: "ok", constant_cost(5.0))

    def run(env):
        t1 = service.submit(token, "polaris", fid)
        yield service.wait(t1)
        first_done = env.now
        t2 = service.submit(token, "polaris", fid)
        yield service.wait(t2)
        second_done = env.now
        results.append((first_done, second_done, t1, t2))

    results = []
    env.process(run(env))
    env.run()
    first_done, second_done, t1, t2 = results[0]
    assert first_done == pytest.approx(65.0)  # cold: 10+20+30+5
    assert second_done - first_done == pytest.approx(5.0)  # warm: just 5
    assert service.task_record(t1).outcome.cold_start is True
    assert service.task_record(t2).outcome.cold_start is False
    assert service.task_record(t1).outcome.node_id == service.task_record(t2).outcome.node_id
    assert sched.provision_count == 1


def test_idle_timeout_releases_node():
    env, service, token, ep, sched, *_ = make_world(idle_timeout=100.0)
    fid = service.register_function(lambda: None, constant_cost(1.0))

    def run(env):
        t1 = service.submit(token, "polaris", fid)
        yield service.wait(t1)
        yield env.timeout(150.0)  # exceed idle timeout
        t2 = service.submit(token, "polaris", fid)
        yield service.wait(t2)
        results.append(service.task_record(t2).outcome.cold_start)

    results = []
    env.process(run(env))
    env.run()
    assert results == [True]
    assert sched.release_count == 2  # both nodes eventually reaped
    assert sched.busy_nodes == 0


def test_reuse_before_idle_timeout_keeps_node():
    env, service, token, ep, sched, *_ = make_world(idle_timeout=100.0)
    fid = service.register_function(lambda: None, constant_cost(1.0))

    def run(env):
        t1 = service.submit(token, "polaris", fid)
        yield service.wait(t1)
        yield env.timeout(50.0)  # reuse within the idle window
        t2 = service.submit(token, "polaris", fid)
        yield service.wait(t2)
        results.append(service.task_record(t2).outcome.cold_start)

    results = []
    env.process(run(env))
    env.run()
    assert results == [False]
    assert sched.provision_count == 1


def test_parallel_tasks_share_pool_fcfs():
    env, service, token, ep, sched, *_ = make_world(n_nodes=1, queue_median=0, boot_median=0, env_cache=0)
    fid = service.register_function(lambda: None, constant_cost(10.0))
    t1 = service.submit(token, "polaris", fid)
    t2 = service.submit(token, "polaris", fid)
    env.run()
    o1 = service.task_record(t1).outcome
    o2 = service.task_record(t2).outcome
    # Single warm pool slot: second task starts when the first finishes.
    assert o1.finished_at == pytest.approx(10.0)
    assert o2.finished_at == pytest.approx(20.0)
    assert o2.cold_start is False  # reused the parked node


def test_function_error_reported_not_raised():
    env, service, token, *_ = make_world()

    def boom():
        raise RuntimeError("analysis exploded")

    fid = service.register_function(boom, constant_cost(1.0))
    tid = service.submit(token, "polaris", fid)
    env.run()
    snap = service.get_task(token, tid)
    assert snap["status"] == "FAILED"
    assert "analysis exploded" in snap["error"]


def test_unknown_function_rejected_at_submit():
    env, service, token, *_ = make_world()
    with pytest.raises(FunctionNotRegistered):
        service.submit(token, "polaris", "func-9999")


def test_unknown_endpoint_rejected():
    env, service, token, *_ = make_world()
    fid = service.register_function(lambda: None)
    with pytest.raises(EndpointError):
        service.submit(token, "theta", fid)


def test_wrong_scope_rejected():
    env, service, token, ep, sched, auth, alice = make_world()
    bad = auth.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    fid = service.register_function(lambda: None)
    with pytest.raises(PermissionDenied):
        service.submit(bad, "polaris", fid)


def test_unknown_task_poll():
    env, service, token, *_ = make_world()
    with pytest.raises(ComputeError):
        service.get_task(token, "ctask-404")


def test_cost_model_receives_arguments():
    env, service, token, *_ = make_world(queue_median=0, boot_median=0, env_cache=0)

    def cost(args, kwargs):
        return args[0] * 2.0  # 2 s per unit of work

    fid = service.register_function(lambda n: n, cost)
    tid = service.submit(token, "polaris", fid, 7)
    env.run(until=service.wait(tid))
    assert env.now == pytest.approx(14.0)


def test_negative_cost_model_rejected():
    env, service, token, *_ = make_world(queue_median=0, boot_median=0, env_cache=0)
    fid = service.register_function(lambda: None, lambda a, k: -1.0)
    tid = service.submit(token, "polaris", fid)
    with pytest.raises(ValueError):
        env.run()


def test_scheduler_validation():
    env = Environment()
    with pytest.raises(SchedulerError):
        BatchScheduler(env, n_nodes=0)
    with pytest.raises(SchedulerError):
        BatchScheduler(env, queue_median_s=-1)


def test_double_release_rejected():
    env = Environment()
    sched = BatchScheduler(env, n_nodes=1, queue_median_s=0, boot_median_s=0)

    def run(env):
        node = yield from sched.provision()
        sched.release(node)
        with pytest.raises(SchedulerError):
            sched.release(node)

    env.process(run(env))
    env.run()


def test_endpoint_observability_counters():
    env, service, token, ep, sched, *_ = make_world()
    fid = service.register_function(lambda: None, constant_cost(1.0))

    def run(env):
        for _ in range(3):
            tid = service.submit(token, "polaris", fid)
            yield service.wait(tid)

    env.process(run(env))
    env.run()
    assert ep.tasks_executed == 3
    assert ep.cold_starts == 1
    assert ep.warm_nodes <= 1
