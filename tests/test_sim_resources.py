"""Tests for Resource and Store primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt, Resource, Store


def test_resource_capacity_validated():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_serializes_excess_demand():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            log.append(("start", name, env.now))
            yield env.timeout(10)
            log.append(("end", name, env.now))

    env.process(user(env, res, "a"))
    env.process(user(env, res, "b"))
    env.run()
    assert log == [
        ("start", "a", 0),
        ("end", "a", 10),
        ("start", "b", 10),
        ("end", "b", 20),
    ]


def test_resource_parallel_within_capacity():
    env = Environment()
    res = Resource(env, capacity=3)
    ends = []

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(5)
            ends.append(env.now)

    for _ in range(3):
        env.process(user(env, res))
    env.run()
    assert ends == [5, 5, 5]


def test_resource_fifo_granting():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name, arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(100)

    env.process(user(env, res, "first", 0))
    env.process(user(env, res, "second", 1))
    env.process(user(env, res, "third", 2))
    env.run()
    assert order == ["first", "second", "third"]


def test_interrupted_waiter_releases_queue_slot():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(50)

    def waiter(env, res, name):
        with res.request() as req:
            try:
                yield req
                got.append(name)
                yield env.timeout(1)
            except Interrupt:
                pass

    env.process(holder(env, res))
    w1 = env.process(waiter(env, res, "w1"))
    env.process(waiter(env, res, "w2"))

    def killer(env, w1):
        yield env.timeout(10)
        w1.interrupt()

    env.process(killer(env, w1))
    env.run()
    # w1 was interrupted while queued; w2 must still get the resource.
    assert got == ["w2"]


def test_resource_count_tracks_usage():
    env = Environment()
    res = Resource(env, capacity=2)
    samples = []

    def user(env, res, start):
        yield env.timeout(start)
        with res.request() as req:
            yield req
            samples.append(res.count)
            yield env.timeout(10)

    env.process(user(env, res, 0))
    env.process(user(env, res, 1))
    env.run()
    assert samples == [1, 2]
    assert res.count == 0


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    out = []

    def producer(env, store):
        for i in range(5):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env, store):
        for _ in range(5):
            item = yield store.get()
            out.append((env.now, item))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert out == [(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    out = []

    def consumer(env, store):
        item = yield store.get()
        out.append((env.now, item))

    def producer(env, store):
        yield env.timeout(42)
        yield store.put("late")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert out == [(42, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env, store):
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer(env, store):
        yield env.timeout(10)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert log == [("put-a", 0), ("got", "a", 10), ("put-b", 10)]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    out = []

    def run(env):
        yield store.put({"kind": "x", "v": 1})
        yield store.put({"kind": "y", "v": 2})
        yield store.put({"kind": "x", "v": 3})
        item = yield store.get(filter=lambda it: it["kind"] == "y")
        out.append(item["v"])
        item = yield store.get()
        out.append(item["v"])

    env.process(run(env))
    env.run()
    assert out == [2, 1]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Store(env, capacity=0)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.lists(st.floats(min_value=0.1, max_value=20, allow_nan=False), min_size=1, max_size=25),
)
def test_resource_never_oversubscribed(capacity, hold_times):
    """Property: concurrent holders never exceed capacity, and all jobs run."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    finished = []
    max_seen = [0]

    def user(env, res, hold):
        with res.request() as req:
            yield req
            max_seen[0] = max(max_seen[0], res.count)
            assert res.count <= capacity
            yield env.timeout(hold)
            finished.append(hold)

    for h in hold_times:
        env.process(user(env, res, h))
    env.run()
    assert len(finished) == len(hold_times)
    assert max_seen[0] <= capacity


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(), min_size=0, max_size=30))
def test_store_preserves_items_exactly(items):
    """Property: a store is a faithful FIFO — no loss, no duplication."""
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for it in items:
            yield store.put(it)

    def consumer(env):
        for _ in items:
            received.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items
