"""Tier-1 gate: the span-derived timing decomposition must agree with
the record-based one.

``core.stats`` computes Table 1 / Fig. 4 from hand-maintained
``StepRecord`` fields; ``repro.obs.analysis`` re-derives the same
quantities from spans alone.  If the two ever disagree beyond float
dust, either the instrumentation or the accounting regressed — this
suite is the cross-check, plus a determinism smoke test of the
``python -m repro trace`` CLI.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.__main__ import main
from repro.core import run_campaign
from repro.core.stats import STEP_LABELS, fig4_samples
from repro.obs import derive_runs, fig4_samples_from_traces, run_summary_stats

TOL = 1e-6


@pytest.fixture(scope="module")
def traced_campaign():
    return run_campaign("hyperspectral", duration_s=1800.0, seed=1, obs=True)


def test_span_derived_fig4_matches_step_records(traced_campaign):
    res = traced_campaign
    runs = derive_runs(res.testbed.obs.tracer.spans)
    want = fig4_samples(res.completed_runs)
    got = fig4_samples_from_traces(runs, STEP_LABELS)
    assert set(got) == set(want)
    for key in want:
        assert len(got[key]) == len(want[key]), key
        for a, b in zip(want[key], got[key]):
            assert a == pytest.approx(b, abs=TOL), key


def test_span_derived_table1_matches_core_stats(traced_campaign):
    res = traced_campaign
    runs = derive_runs(res.testbed.obs.tracer.spans)
    stats = run_summary_stats(runs)
    row = res.table1()
    assert stats["total_runs"] == row.total_runs
    assert stats["min_runtime_s"] == pytest.approx(row.min_runtime_s, abs=TOL)
    assert stats["mean_runtime_s"] == pytest.approx(row.mean_runtime_s, abs=TOL)
    assert stats["max_runtime_s"] == pytest.approx(row.max_runtime_s, abs=TOL)
    assert stats["median_overhead_s"] == pytest.approx(row.median_overhead_s, abs=TOL)
    assert stats["median_overhead_pct"] == pytest.approx(
        row.median_overhead_pct, abs=TOL
    )


def test_per_run_runtime_equals_root_span_duration(traced_campaign):
    res = traced_campaign
    by_id = {r.run_id: r for r in derive_runs(res.testbed.obs.tracer.spans)}
    terminal = [r for r in res.runs if r.status.terminal]
    assert len(terminal) == len(by_id)
    for record in terminal:
        trace = by_id[record.run_id]
        assert trace.runtime_seconds == pytest.approx(
            record.runtime_seconds, abs=TOL
        )
        assert trace.active_seconds == pytest.approx(record.active_seconds, abs=TOL)
        assert trace.overhead_seconds == pytest.approx(
            record.overhead_seconds, abs=TOL
        )


def test_tracing_does_not_perturb_the_simulation():
    bare = run_campaign("hyperspectral", duration_s=900.0, seed=3)
    traced = run_campaign("hyperspectral", duration_s=900.0, seed=3, obs=True)
    assert bare.table1() == traced.table1()


# -- CLI smoke ----------------------------------------------------------------


def test_trace_cli_outputs_are_valid_and_deterministic(tmp_path, capsys):
    out1, out2 = tmp_path / "a", tmp_path / "b"
    for out in (out1, out2):
        rc = main(
            [
                "trace",
                "hyperspectral",
                "--duration",
                "600",
                "--seed",
                "1",
                "--format",
                "both",
                "--output",
                str(out),
            ]
        )
        assert rc == 0
    capsys.readouterr()

    for name in ("trace.json", "trace.jsonl", "metrics.csv"):
        a = (out1 / name).read_bytes()
        assert a == (out2 / name).read_bytes(), f"{name} not deterministic"

    doc = json.loads((out1 / "trace.json").read_text())
    events = doc["traceEvents"]
    assert events and all(e["ph"] in ("M", "X") for e in events)
    assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")

    for line in (out1 / "trace.jsonl").read_text().splitlines():
        span = json.loads(line)
        assert {"id", "parent", "name", "start", "end", "attrs"} <= set(span)

    rows = list(csv.reader((out1 / "metrics.csv").open()))
    assert rows[0] == ["kind", "name", "time", "value", "count", "sum", "min", "max"]
    assert {r[0] for r in rows[1:]} <= {"counter", "gauge", "histogram"}
    assert len(rows) > 1
