"""Tests for the flows substrate: backoff, definitions, executor, Gladier."""

from __future__ import annotations

import itertools

import pytest

from repro.auth import AuthClient
from repro.auth.identity import FLOWS_SCOPE
from repro.errors import FlowDefinitionError, FlowError
from repro.flows import (
    ActionState,
    ActionStatus,
    ConstantBackoff,
    ExponentialBackoff,
    FlowDefinition,
    FlowState,
    FlowsService,
    GladierClient,
    GladierTool,
    PAPER_BACKOFF,
    RunStatus,
    resolve_template,
)
from repro.rng import RngRegistry
from repro.sim import Environment


# -- backoff -------------------------------------------------------------------


def test_paper_backoff_doubles_to_ten_minutes():
    it = PAPER_BACKOFF.intervals()
    seq = [next(it) for _ in range(12)]
    assert seq[:5] == [1, 2, 4, 8, 16]
    assert max(seq) == 600.0
    assert seq[-1] == 600.0  # capped


def test_backoff_validation():
    with pytest.raises(FlowError):
        ExponentialBackoff(initial=0)
    with pytest.raises(FlowError):
        ExponentialBackoff(factor=0.5)
    with pytest.raises(FlowError):
        ExponentialBackoff(initial=10, max_interval=5)
    with pytest.raises(FlowError):
        ConstantBackoff(0)


def test_constant_backoff():
    it = ConstantBackoff(2.5).intervals()
    assert [next(it) for _ in range(3)] == [2.5, 2.5, 2.5]


def test_backoff_jitter_validation():
    with pytest.raises(FlowError):
        ExponentialBackoff(jitter=-0.1)
    with pytest.raises(FlowError):
        ExponentialBackoff(jitter=1.0)
    ExponentialBackoff(jitter=0.999)  # open upper bound


def test_jittered_backoff_requires_rng():
    policy = ExponentialBackoff(initial=1.0, jitter=0.5)
    with pytest.raises(FlowError):
        next(policy.intervals())


def test_jittered_backoff_deterministic_under_seed():
    policy = ExponentialBackoff(initial=1.0, factor=2.0, max_interval=64.0, jitter=0.5)

    def draw():
        rng = RngRegistry(seed=42).stream("flows.retry")
        it = policy.intervals(rng)
        return [next(it) for _ in range(10)]

    a, b = draw(), draw()
    assert a == b  # bit-identical under the same seed
    assert draw() != [
        next(policy.intervals(RngRegistry(seed=43).stream("flows.retry")))
        for _ in range(10)
    ]


def test_jittered_backoff_stays_within_spread():
    policy = ExponentialBackoff(initial=2.0, factor=2.0, max_interval=600.0, jitter=0.25)
    rng = RngRegistry(seed=0).stream("flows.retry")
    base = ExponentialBackoff(initial=2.0, factor=2.0, max_interval=600.0)
    base_it, jit_it = base.intervals(), policy.intervals(rng)
    for _ in range(12):
        nominal, jittered = next(base_it), next(jit_it)
        assert nominal * 0.75 <= jittered <= nominal * 1.25


def test_zero_jitter_is_bit_identical_and_touches_no_rng():
    plain = ExponentialBackoff(initial=1.0, factor=2.0, max_interval=600.0)
    zero = ExponentialBackoff(initial=1.0, factor=2.0, max_interval=600.0, jitter=0.0)
    rng = RngRegistry(seed=7).stream("flows.retry")
    before = rng.bit_generator.state["state"]["state"]
    plain_it, zero_it = plain.intervals(), zero.intervals(rng)
    assert [next(plain_it) for _ in range(12)] == [next(zero_it) for _ in range(12)]
    # the RNG stream was handed over but never drawn from
    assert rng.bit_generator.state["state"]["state"] == before


# -- templates -------------------------------------------------------------------


def test_resolve_template_paths():
    ctx = {"input": {"path": "/a.emd"}, "states": {"T": {"dest": "/b.emd"}}}
    assert resolve_template("$.input.path", ctx) == "/a.emd"
    assert resolve_template("$.states.T.dest", ctx) == "/b.emd"
    assert resolve_template({"x": "$.input.path", "y": 5}, ctx) == {"x": "/a.emd", "y": 5}
    assert resolve_template(["$.input.path", "lit"], ctx) == ["/a.emd", "lit"]
    assert resolve_template("literal", ctx) == "literal"


def test_resolve_template_missing_path():
    with pytest.raises(FlowDefinitionError):
        resolve_template("$.input.nope", {"input": {}})


# -- definitions -------------------------------------------------------------------


def linear_def(n=3):
    states = tuple(
        FlowState(name=f"S{i}", provider="mock", next=(f"S{i+1}" if i < n - 1 else None))
        for i in range(n)
    )
    return FlowDefinition(title="t", start_at="S0", states=states)


def test_definition_valid_linear():
    d = linear_def()
    assert [s.name for s in d.ordered_states()] == ["S0", "S1", "S2"]
    assert d.n_transitions == 4


def test_definition_rejects_empty():
    with pytest.raises(FlowDefinitionError, match="no states"):
        FlowDefinition(title="t", start_at="x", states=())


def test_definition_rejects_bad_start():
    with pytest.raises(FlowDefinitionError, match="start state"):
        FlowDefinition(title="t", start_at="zzz", states=(FlowState("a", "p"),))


def test_definition_rejects_unknown_transition():
    with pytest.raises(FlowDefinitionError, match="unknown state"):
        FlowDefinition(
            title="t", start_at="a", states=(FlowState("a", "p", next="ghost"),)
        )


def test_definition_rejects_duplicates():
    with pytest.raises(FlowDefinitionError, match="duplicate"):
        FlowDefinition(
            title="t", start_at="a", states=(FlowState("a", "p"), FlowState("a", "p"))
        )


def test_definition_rejects_cycle():
    with pytest.raises(FlowDefinitionError, match="cycle"):
        FlowDefinition(
            title="t",
            start_at="a",
            states=(FlowState("a", "p", next="b"), FlowState("b", "p", next="a")),
        )


def test_definition_rejects_unreachable():
    with pytest.raises(FlowDefinitionError, match="unreachable"):
        FlowDefinition(
            title="t",
            start_at="a",
            states=(FlowState("a", "p"), FlowState("orphan", "p")),
        )


# -- executor with a mock provider ------------------------------------------------------


class MockProvider:
    """Completes each action a fixed duration after submission."""

    name = "mock"

    def __init__(self, env, duration=5.0, fail=False):
        self.env = env
        self.duration = duration
        self.fail = fail
        self._ids = itertools.count(1)
        self._start: dict[str, float] = {}
        self.bodies: list[dict] = []

    def run(self, body):
        self.bodies.append(body)
        aid = f"mock-{next(self._ids)}"
        self._start[aid] = self.env.now
        return aid

    def status(self, action_id):
        elapsed = self.env.now - self._start[action_id]
        if elapsed < self.duration:
            return ActionStatus(state=ActionState.ACTIVE)
        if self.fail:
            return ActionStatus(
                state=ActionState.FAILED, error="mock exploded", active_seconds=self.duration
            )
        return ActionStatus(
            state=ActionState.SUCCEEDED,
            result={"mock": True},
            active_seconds=self.duration,
        )


def make_flows(env, duration=5.0, fail=False, transition=0.0, poll=0.0, backoff=PAPER_BACKOFF):
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [FLOWS_SCOPE], now=0.0)
    svc = FlowsService(
        env,
        auth,
        RngRegistry(0),
        transition_latency_s=transition,
        transition_sigma=0.0,
        poll_latency_s=poll,
        backoff=backoff,
    )
    provider = MockProvider(env, duration=duration, fail=fail)
    svc.register_provider(provider)
    return svc, token, provider


def test_flow_run_succeeds_and_records_steps():
    env = Environment()
    svc, token, provider = make_flows(env, duration=5.0)
    flow_id = svc.deploy(linear_def(2))
    run = svc.run_flow(token, flow_id, {"x": 1})
    env.run(until=run.completed)
    assert run.status is RunStatus.SUCCEEDED
    assert len(run.steps) == 2
    for step in run.steps:
        assert step.active_seconds == 5.0
        assert step.polls >= 1
        assert step.result == {"mock": True}


def test_polling_detection_overhead():
    """A 5 s action under 1,2,4,... backoff is detected at poll t=7 →
    2 s of detection overhead per step."""
    env = Environment()
    svc, token, provider = make_flows(env, duration=5.0)
    flow_id = svc.deploy(linear_def(1))
    run = svc.run_flow(token, flow_id, {})
    env.run(until=run.completed)
    step = run.steps[0]
    assert step.polls == 3  # polls at 1, 3, 7
    assert step.observed_seconds == pytest.approx(7.0)
    assert step.overhead_seconds == pytest.approx(2.0)
    assert run.runtime_seconds == pytest.approx(7.0)
    assert run.overhead_seconds == pytest.approx(2.0)


def test_transition_latency_counts_as_overhead():
    env = Environment()
    svc, token, provider = make_flows(env, duration=5.0, transition=2.0)
    flow_id = svc.deploy(linear_def(2))
    run = svc.run_flow(token, flow_id, {})
    env.run(until=run.completed)
    # 3 transitions x 2 s + 2 steps x 2 s detection lag = 10 s overhead
    assert run.active_seconds == pytest.approx(10.0)
    assert run.overhead_seconds == pytest.approx(10.0)
    assert run.overhead_fraction == pytest.approx(0.5)


def test_flow_failure_recorded():
    env = Environment()
    svc, token, provider = make_flows(env, duration=3.0, fail=True)
    flow_id = svc.deploy(linear_def(2))
    run = svc.run_flow(token, flow_id, {})
    env.run(until=run.completed)
    assert run.status is RunStatus.FAILED
    assert "mock exploded" in run.error
    assert len(run.steps) == 1  # stopped at the failing step
    assert run.steps[0].error == "mock exploded"


def test_template_threading_between_states():
    env = Environment()
    svc, token, provider = make_flows(env, duration=1.0)
    states = (
        FlowState("A", "mock", parameters={"path": "$.input.path"}, next="B"),
        FlowState("B", "mock", parameters={"prev_ok": "$.states.A.mock"}),
    )
    d = FlowDefinition(title="t", start_at="A", states=states)
    run = svc.run_flow(token, svc.deploy(d), {"path": "/x.emd"})
    env.run(until=run.completed)
    assert provider.bodies[0] == {"path": "/x.emd"}
    assert provider.bodies[1] == {"prev_ok": True}


def test_parallel_runs_interleave():
    env = Environment()
    svc, token, provider = make_flows(env, duration=5.0)
    flow_id = svc.deploy(linear_def(1))
    r1 = svc.run_flow(token, flow_id, {})
    r2 = svc.run_flow(token, flow_id, {})
    env.run()
    assert r1.status is RunStatus.SUCCEEDED
    assert r2.status is RunStatus.SUCCEEDED
    # Both ran concurrently: wall clock is one flow's runtime, not two.
    assert env.now == pytest.approx(7.0)


def test_unknown_provider_rejected_at_deploy():
    env = Environment()
    svc, token, provider = make_flows(env)
    bad = FlowDefinition(title="t", start_at="a", states=(FlowState("a", "ghost"),))
    with pytest.raises(FlowError, match="unknown action provider"):
        svc.deploy(bad)


def test_unknown_flow_and_run_ids():
    env = Environment()
    svc, token, provider = make_flows(env)
    with pytest.raises(FlowError):
        svc.run_flow(token, "flow-404", {})
    with pytest.raises(FlowError):
        svc.get_run("run-404")


def test_duplicate_provider_rejected():
    env = Environment()
    svc, token, provider = make_flows(env)
    with pytest.raises(FlowError, match="already registered"):
        svc.register_provider(MockProvider(env))


def test_run_summary_shape():
    env = Environment()
    svc, token, provider = make_flows(env, duration=2.0)
    run = svc.run_flow(token, svc.deploy(linear_def(1)), {})
    env.run(until=run.completed)
    s = run.summary()
    assert s["status"] == "SUCCEEDED"
    assert "S0" in s["steps"]
    assert s["overhead_s"] >= 0


def test_constant_backoff_reduces_overhead():
    env1 = Environment()
    svc1, token1, _ = make_flows(env1, duration=50.0)
    r1 = svc1.run_flow(token1, svc1.deploy(linear_def(1)), {})
    env1.run(until=r1.completed)

    env2 = Environment()
    svc2, token2, _ = make_flows(env2, duration=50.0, backoff=ConstantBackoff(1.0))
    r2 = svc2.run_flow(token2, svc2.deploy(linear_def(1)), {})
    env2.run(until=r2.completed)

    assert r2.overhead_seconds < r1.overhead_seconds


# -- gladier ---------------------------------------------------------------------


def test_gladier_compose_chains_tools():
    env = Environment()
    svc, token, provider = make_flows(env, duration=1.0)
    t1 = GladierTool("transfer", (FlowState("Transfer", "mock"),))
    t2 = GladierTool(
        "analyze", (FlowState("Analyze", "mock"), FlowState("Publish", "mock"))
    )
    client = GladierClient(svc, token)
    d = client.compose("pipeline", [t1, t2])
    names = [s.name for s in d.ordered_states()]
    assert names == ["Transfer", "Analyze", "Publish"]
    run = client.run_flow(d, {})
    env.run(until=run.completed)
    assert run.status is RunStatus.SUCCEEDED


def test_gladier_deploy_memoized():
    env = Environment()
    svc, token, provider = make_flows(env, duration=1.0)
    client = GladierClient(svc, token)
    d = client.compose("pipeline", [GladierTool("t", (FlowState("A", "mock"),))])
    id1 = client.deploy(d)
    id2 = client.deploy(d)
    assert id1 == id2


def test_gladier_rejects_empty_and_duplicates():
    env = Environment()
    svc, token, provider = make_flows(env)
    client = GladierClient(svc, token)
    with pytest.raises(FlowDefinitionError):
        client.compose("x", [])
    with pytest.raises(FlowDefinitionError):
        GladierTool("empty", ())
    dup = GladierTool("d", (FlowState("Same", "mock"),))
    with pytest.raises(FlowDefinitionError, match="duplicate"):
        client.compose("x", [dup, dup])


# -- executor lifecycle bugfixes ----------------------------------------------


class ExplodingProvider:
    """Raises a non-FlowError from run() — a programming error, not an
    action failure."""

    name = "mock"

    def run(self, body):
        raise ValueError("provider blew up")

    def status(self, action_id):  # pragma: no cover - never reached
        raise AssertionError("status() must not be called")


def test_non_flow_error_still_terminates_the_run():
    """A ValueError escaping a provider used to leave the run ACTIVE
    forever while its completed event fired; it must be marked FAILED
    (with the error recorded), and the original exception must still
    escape the kernel so the bug stays loud."""
    env = Environment()
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [FLOWS_SCOPE], now=0.0)
    svc = FlowsService(env, auth, RngRegistry(0), transition_latency_s=0.0)
    svc.register_provider(ExplodingProvider())
    run = svc.run_flow(token, svc.deploy(linear_def(1)), {})

    witnessed = []

    def waiter():
        result = yield run.completed
        witnessed.append(result.status)

    env.process(waiter())
    with pytest.raises(ValueError, match="provider blew up"):
        env.run()
    assert run.status is RunStatus.FAILED
    assert run.error == "ValueError: provider blew up"
    assert run.finished_at is not None
    # The waiter saw a *terminal* run, not an ACTIVE one.
    assert witnessed == [RunStatus.FAILED]


def test_flow_error_does_not_escape_the_kernel():
    """Action failures are expected outcomes: FAILED run, no exception."""
    env = Environment()
    svc, token, provider = make_flows(env, duration=1.0, fail=True)
    run = svc.run_flow(token, svc.deploy(linear_def(1)), {})
    env.run(until=run.completed)
    assert run.status is RunStatus.FAILED
    assert "mock exploded" in run.error


# -- in-flight runtime (FlowRun.as_of) ----------------------------------------


def test_in_flight_runtime_reads_the_sim_clock():
    """runtime_seconds of an ACTIVE run used to fall back to
    ``started_at`` arithmetic and report 0.0; it must report the elapsed
    runtime so far."""
    env = Environment()
    svc, token, provider = make_flows(env, duration=50.0)
    run = svc.run_flow(token, svc.deploy(linear_def(1)), {})
    env.run(until=20.0)
    assert run.status is RunStatus.ACTIVE
    assert run.runtime_seconds == pytest.approx(20.0)
    assert run.overhead_seconds == pytest.approx(20.0)  # no active time yet

    env.run(until=run.completed)
    assert run.status is RunStatus.SUCCEEDED
    assert run.runtime_seconds == pytest.approx(run.finished_at - run.started_at)


def test_as_of_snapshots_in_flight_and_terminal_runs():
    env = Environment()
    svc, token, provider = make_flows(env, duration=50.0)
    run = svc.run_flow(token, svc.deploy(linear_def(1)), {})
    env.run(until=30.0)
    snap = run.as_of(30.0)
    assert snap.in_flight
    assert snap.runtime_seconds == pytest.approx(30.0)
    assert snap.as_of == 30.0

    env.run(until=run.completed)
    done = run.as_of(env.now + 1000.0)  # terminal: window is fixed
    assert not done.in_flight
    assert done.runtime_seconds == pytest.approx(run.runtime_seconds)
    assert done.overhead_seconds == pytest.approx(run.overhead_seconds)
    assert 0.0 <= done.overhead_fraction <= 1.0


def test_summary_of_active_run_is_honest():
    env = Environment()
    svc, token, provider = make_flows(env, duration=50.0)
    run = svc.run_flow(token, svc.deploy(linear_def(1)), {})
    env.run(until=25.0)
    doc = run.summary()
    assert doc["in_flight"] is True
    assert doc["runtime_s"] == pytest.approx(25.0)
    env.run(until=run.completed)
    doc = run.summary()
    assert doc["in_flight"] is False
    assert doc["runtime_s"] == pytest.approx(round(run.runtime_seconds, 3))


def test_clockless_run_record_still_reports_zero():
    """Hand-built records (no completed event) cannot see a clock."""
    from repro.flows import FlowRun

    run = FlowRun(run_id="r", flow_title="t", input={}, started_at=5.0)
    assert run.runtime_seconds == 0.0
    doc = run.summary()
    assert doc["runtime_s"] is None and doc["in_flight"] is True
