"""Unit tests for repro.obs: tracer, metrics, exporters, analysis."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.errors import SimulationError
from repro.obs import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    NULL_OBS,
    RunTrace,
    Segment,
    SimTracer,
    StepTrace,
    critical_path,
    derive_runs,
    metrics_to_csv,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.sim import Environment


# -- spans ---------------------------------------------------------------------


def test_span_records_sim_time_window():
    env = Environment()
    tracer = SimTracer(env)

    def proc():
        span = tracer.start("work")
        yield env.timeout(5.0)
        span.finish()

    env.process(proc())
    env.run()
    (span,) = tracer.spans
    assert span.start == 0.0
    assert span.end == 5.0
    assert span.duration == 5.0
    assert span.ended


def test_span_parenting_and_attrs():
    env = Environment()
    tracer = SimTracer(env)
    root = tracer.start("flow.run").set("run_id", "r1")
    child = tracer.start("flow.step", root).set("state", "T")
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    assert child.attrs == {"state": "T"}
    assert root.attrs == {"run_id": "r1"}


def test_span_ids_are_deterministic_counters():
    env = Environment()
    tracer = SimTracer(env)
    spans = [tracer.start(f"s{i}") for i in range(3)]
    assert [s.span_id for s in spans] == [1, 2, 3]


def test_finish_is_idempotent():
    env = Environment()
    tracer = SimTracer(env)

    def proc():
        span = tracer.start("w")
        yield env.timeout(1.0)
        span.finish()
        yield env.timeout(1.0)
        span.finish()  # must keep the first end

    env.process(proc())
    env.run()
    assert tracer.spans[0].end == 1.0


def test_null_span_parent_is_treated_as_root():
    env = Environment()
    tracer = SimTracer(env)
    span = tracer.start("child", NULL_SPAN)
    assert span.parent_id is None


def test_finished_spans_filters_open_ones():
    env = Environment()
    tracer = SimTracer(env)
    a = tracer.start("a").finish()
    tracer.start("b")  # left open
    assert tracer.finished_spans() == [a]
    assert len(tracer) == 2


def test_null_tracer_is_free_singleton():
    span = NULL_TRACER.start("anything")
    assert span is NULL_SPAN
    assert span.set("k", 1) is NULL_SPAN
    assert span.finish() is NULL_SPAN
    assert span.ended  # so "close if open" guards are no-ops
    assert span.duration is None
    assert NULL_TRACER.spans == []
    assert len(NULL_TRACER) == 0
    assert not NULL_TRACER.enabled


# -- metrics -------------------------------------------------------------------


def test_counter_and_weighted_inc():
    env = Environment()
    m = MetricsRegistry(env)
    c = m.counter("polls")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_gauge_retains_time_series():
    env = Environment()
    m = MetricsRegistry(env)
    g = m.gauge("active")

    def proc():
        g.set(1)
        yield env.timeout(10.0)
        g.add(2)
        yield env.timeout(5.0)
        g.add(-3)

    env.process(proc())
    env.run()
    assert g.value == 0.0
    assert g.samples == [(0.0, 1.0), (10.0, 3.0), (15.0, 0.0)]


def test_histogram_buckets_by_sim_time():
    env = Environment()
    m = MetricsRegistry(env, default_bucket_s=60.0)
    h = m.histogram("wait")

    def proc():
        h.observe(5.0)
        yield env.timeout(30.0)
        h.observe(7.0)  # same bucket [0, 60)
        yield env.timeout(60.0)
        h.observe(1.0)  # bucket [60, 120)

    env.process(proc())
    env.run()
    assert h.count == 3
    assert h.total == 13.0
    assert h.buckets[0] == [2.0, 12.0, 5.0, 7.0]
    assert h.buckets[1] == [1.0, 1.0, 1.0, 1.0]


def test_histogram_bucket_width_must_be_positive():
    env = Environment()
    m = MetricsRegistry(env)
    with pytest.raises(SimulationError):
        m.histogram("bad", bucket_s=0.0)


def test_registry_lookup_is_idempotent_but_kind_checked():
    env = Environment()
    m = MetricsRegistry(env)
    assert m.counter("x") is m.counter("x")
    with pytest.raises(SimulationError):
        m.gauge("x")
    assert len(m) == 1
    assert [i.name for i in m.instruments()] == ["x"]


def test_null_metrics_absorbs_everything():
    c = NULL_METRICS.counter("a")
    c.inc()
    NULL_METRICS.gauge("b").set(3)
    NULL_METRICS.histogram("c").observe(1.0)
    assert NULL_METRICS.instruments() == []
    assert len(NULL_METRICS) == 0
    assert not NULL_METRICS.enabled


def test_observability_bundle_and_null():
    env = Environment()
    obs = Observability(env)
    assert obs.enabled and obs.tracer.enabled and obs.metrics.enabled
    assert not NULL_OBS.enabled
    assert NULL_OBS.tracer is NULL_TRACER
    assert NULL_OBS.metrics is NULL_METRICS


# -- exporters ----------------------------------------------------------------


def _sample_trace():
    env = Environment()
    tracer = SimTracer(env)

    def proc():
        root = tracer.start("flow.run").set("run_id", "run-000001")
        step = tracer.start("flow.step", root).set("state", "T")
        yield env.timeout(3.0)
        step.finish()
        yield env.timeout(1.0)
        root.set("status", "SUCCEEDED").finish()
        tracer.start("net.stream").set("bytes", 10.0).finish()

    env.process(proc())
    env.run()
    return tracer


def test_jsonl_round_trips_spans():
    tracer = _sample_trace()
    lines = spans_to_jsonl(tracer.spans).splitlines()
    docs = [json.loads(line) for line in lines]
    assert len(docs) == 3
    assert docs[0]["name"] == "flow.run"
    assert docs[0]["end"] == 4.0
    assert docs[1]["parent"] == docs[0]["id"]
    assert docs[1]["attrs"] == {"state": "T"}


def test_jsonl_unfinished_span_has_null_end():
    env = Environment()
    tracer = SimTracer(env)
    tracer.start("open")
    (doc,) = [json.loads(x) for x in spans_to_jsonl(tracer.spans).splitlines()]
    assert doc["end"] is None


def test_chrome_export_tracks_and_events():
    tracer = _sample_trace()
    doc = json.loads(spans_to_chrome(tracer.spans))
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    # One run track + one net track; the step rides the run's lineage.
    assert {m["args"]["name"] for m in meta} == {"run run-000001", "net"}
    assert len(slices) == 3
    step = next(e for e in slices if e["name"] == "flow.step")
    assert step["ts"] == 0.0
    assert step["dur"] == pytest.approx(3e6)
    assert step["cat"] == "flow"


def test_chrome_export_skips_unfinished_spans():
    env = Environment()
    tracer = SimTracer(env)
    tracer.start("open")
    doc = json.loads(spans_to_chrome(tracer.spans))
    assert doc["traceEvents"] == []


def test_metrics_csv_shape():
    env = Environment()
    m = MetricsRegistry(env, default_bucket_s=60.0)
    m.counter("a").inc(2)
    m.gauge("b").set(1)
    m.histogram("c").observe(4.0)
    rows = list(csv.reader(io.StringIO(metrics_to_csv(m))))
    assert rows[0] == ["kind", "name", "time", "value", "count", "sum", "min", "max"]
    kinds = [r[0] for r in rows[1:]]
    assert kinds == ["counter", "gauge", "histogram"]  # name-sorted
    assert rows[1][3] == "2.0"
    assert rows[3][4] == "1"  # histogram count


# -- analysis ------------------------------------------------------------------


def test_critical_path_tiles_sum_to_runtime():
    step = StepTrace(
        name="T",
        provider="transfer",
        action_id="x1",
        start=1.0,
        end=10.0,
        action_start=2.0,
        action_end=7.0,
        polls=3,
        status="SUCCEEDED",
    )
    run = RunTrace(
        run_id="r", flow="f", status="SUCCEEDED", start=0.0, end=12.0, steps=(step,)
    )
    segs = critical_path(run)
    assert sum(s.duration for s in segs) == pytest.approx(run.runtime_seconds)
    assert [s.kind for s in segs] == [
        "transition",
        "submit",
        "active",
        "detect",
        "transition",
    ]
    active = next(s for s in segs if s.kind == "active")
    assert (active.start, active.end) == (2.0, 7.0)


def test_critical_path_step_without_action_is_overhead():
    step = StepTrace(
        name="T",
        provider="p",
        action_id="",
        start=0.0,
        end=4.0,
        action_start=None,
        action_end=None,
        polls=1,
        status="FAILED",
    )
    run = RunTrace(
        run_id="r", flow="f", status="FAILED", start=0.0, end=4.0, steps=(step,)
    )
    segs = critical_path(run)
    assert [s.kind for s in segs] == ["overhead"]
    assert step.active_seconds == 0.0
    assert step.overhead_seconds == 4.0


def test_derive_runs_skips_unfinished_roots():
    env = Environment()
    tracer = SimTracer(env)
    tracer.start("flow.run").set("run_id", "open")  # still in flight
    done = tracer.start("flow.run").set("run_id", "done").set("status", "SUCCEEDED")
    done.finish()
    runs = derive_runs(tracer.spans)
    assert [r.run_id for r in runs] == ["done"]
