"""Unit and property tests for the h5lite container format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.emd import H5LiteFile, H5LiteWriter
from repro.errors import FormatError


def roundtrip(tmp_path, build):
    path = tmp_path / "t.h5l"
    with H5LiteWriter(path) as w:
        build(w)
    return H5LiteFile(path)


def test_empty_file_roundtrip(tmp_path):
    f = roundtrip(tmp_path, lambda w: None)
    assert f.root.keys() == []
    f.close()


def test_root_attrs(tmp_path):
    def build(w):
        r = w.require_group("/")
        r.attrs["version_major"] = 0
        r.attrs["title"] = "hello"
        r.attrs["ratio"] = 2.5
        r.attrs["flag"] = True
        r.attrs["nothing"] = None

    f = roundtrip(tmp_path, build)
    assert f.attrs["version_major"] == 0
    assert f.attrs["title"] == "hello"
    assert f.attrs["ratio"] == 2.5
    assert f.attrs["flag"] is True
    assert f.attrs["nothing"] is None
    f.close()


def test_attr_types_preserved(tmp_path):
    """ints stay ints, floats stay floats, bools stay bools."""

    def build(w):
        g = w.require_group("g")
        g.attrs["i"] = 3
        g.attrs["f"] = 3.0
        g.attrs["b"] = False

    f = roundtrip(tmp_path, build)
    g = f["g"]
    assert type(g.attrs["i"]) is int
    assert type(g.attrs["f"]) is float
    assert type(g.attrs["b"]) is bool
    f.close()


def test_array_attrs(tmp_path):
    def build(w):
        g = w.require_group("g")
        g.attrs["ints"] = [1, 2, 3]
        g.attrs["floats"] = np.array([[1.5, 2.5]])
        g.attrs["strs"] = ["a", "b"]

    f = roundtrip(tmp_path, build)
    g = f["g"]
    np.testing.assert_array_equal(g.attrs["ints"], [1, 2, 3])
    np.testing.assert_array_equal(g.attrs["floats"], [[1.5, 2.5]])
    assert list(g.attrs["strs"]) == ["a", "b"]
    f.close()


def test_nested_groups(tmp_path):
    f = roundtrip(tmp_path, lambda w: w.require_group("a/b/c"))
    assert f["a"].groups() == ["b"]
    assert f["a/b"].groups() == ["c"]
    assert f["a/b/c"].keys() == []
    f.close()


def test_contiguous_dataset_roundtrip(tmp_path):
    arr = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
    f = roundtrip(tmp_path, lambda w: w.create_dataset("d", arr))
    ds = f["d"]
    assert ds.shape == (2, 3, 4)
    assert ds.dtype == np.float64
    np.testing.assert_array_equal(ds.read(), arr)
    f.close()


def test_compressed_dataset_roundtrip(tmp_path):
    arr = np.zeros((100, 100), dtype=np.int32)
    arr[10:20, 10:20] = 7
    f = roundtrip(tmp_path, lambda w: w.create_dataset("d", arr, compression="zlib"))
    np.testing.assert_array_equal(f["d"].read(), arr)
    f.close()


def test_compression_actually_shrinks(tmp_path):
    arr = np.zeros((512, 512), dtype=np.float64)
    p1 = tmp_path / "raw.h5l"
    p2 = tmp_path / "z.h5l"
    with H5LiteWriter(p1) as w:
        w.create_dataset("d", arr)
    with H5LiteWriter(p2) as w:
        w.create_dataset("d", arr, compression="zlib")
    assert p2.stat().st_size < p1.stat().st_size / 10


def test_chunked_full_read(tmp_path):
    arr = np.arange(5 * 6 * 7, dtype=np.float32).reshape(5, 6, 7)
    f = roundtrip(
        tmp_path, lambda w: w.create_dataset("d", arr, chunks=(2, 3, 4))
    )
    np.testing.assert_array_equal(f["d"].read(), arr)
    f.close()


def test_chunked_partial_read_single_frame(tmp_path):
    movie = np.random.default_rng(0).random((10, 16, 16))
    f = roundtrip(
        tmp_path, lambda w: w.create_dataset("m", movie, chunks=(1, 16, 16))
    )
    ds = f["m"]
    np.testing.assert_array_equal(ds[3], movie[3])
    np.testing.assert_array_equal(ds[9], movie[9])
    np.testing.assert_array_equal(ds[-1], movie[-1])
    f.close()


def test_chunked_partial_read_slices(tmp_path):
    arr = np.random.default_rng(1).random((9, 9))
    f = roundtrip(tmp_path, lambda w: w.create_dataset("d", arr, chunks=(4, 4)))
    ds = f["d"]
    np.testing.assert_array_equal(ds[2:7, 3:9], arr[2:7, 3:9])
    np.testing.assert_array_equal(ds[:, 5], arr[:, 5])
    np.testing.assert_array_equal(ds[0:0], arr[0:0])
    f.close()


def test_chunked_compressed_partial_read(tmp_path):
    arr = np.random.default_rng(2).random((6, 8, 8))
    f = roundtrip(
        tmp_path,
        lambda w: w.create_dataset("d", arr, chunks=(2, 8, 8), compression="zlib"),
    )
    np.testing.assert_array_equal(f["d"][1:5], arr[1:5])
    f.close()


def test_index_errors(tmp_path):
    arr = np.zeros((4, 4))
    f = roundtrip(tmp_path, lambda w: w.create_dataset("d", arr, chunks=(2, 2)))
    ds = f["d"]
    with pytest.raises(IndexError):
        ds[10]
    with pytest.raises(IndexError):
        ds[0, 0, 0]
    with pytest.raises(IndexError):
        ds[::2]
    with pytest.raises(IndexError):
        ds["bad"]
    f.close()


def test_duplicate_path_rejected(tmp_path):
    path = tmp_path / "t.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("d", np.zeros(3))
        with pytest.raises(FormatError, match="already exists"):
            w.create_dataset("d", np.zeros(3))


def test_group_dataset_collision_rejected(tmp_path):
    path = tmp_path / "t.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("x", np.zeros(3))
        with pytest.raises(FormatError):
            w.require_group("x/y")


def test_write_after_close_rejected(tmp_path):
    path = tmp_path / "t.h5l"
    w = H5LiteWriter(path)
    w.close()
    with pytest.raises(FormatError, match="closed"):
        w.create_dataset("d", np.zeros(3))
    w.close()  # idempotent


def test_unsupported_dtype_rejected(tmp_path):
    path = tmp_path / "t.h5l"
    with H5LiteWriter(path) as w:
        with pytest.raises(FormatError, match="dtype"):
            w.create_dataset("d", np.array(["a", "b"]))


def test_missing_path_keyerror(tmp_path):
    f = roundtrip(tmp_path, lambda w: w.require_group("a"))
    with pytest.raises(KeyError):
        f["a/missing"]
    assert "a" in f
    assert "zzz" not in f
    f.close()


def test_walk_enumerates_everything(tmp_path):
    def build(w):
        w.require_group("g1/g2")
        w.create_dataset("g1/d1", np.zeros(2))
        w.create_dataset("top", np.zeros(2))

    f = roundtrip(tmp_path, build)
    paths = [p for p, _ in f.walk()]
    assert paths == ["/g1", "/g1/g2", "/g1/d1", "/top"]
    f.close()


def test_truncated_file_detected(tmp_path):
    path = tmp_path / "t.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("d", np.arange(1000.0))
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(FormatError):
        H5LiteFile(path)


def test_not_h5lite_detected(tmp_path):
    path = tmp_path / "t.h5l"
    path.write_bytes(b"PK\x03\x04" + b"\x00" * 100)
    with pytest.raises(FormatError, match="magic"):
        H5LiteFile(path)


def test_corrupt_footer_detected(tmp_path):
    path = tmp_path / "t.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("d", np.arange(10.0))
    data = bytearray(path.read_bytes())
    # Flip bytes inside the footer region (just before the 24-byte tail).
    for i in range(len(data) - 40, len(data) - 30):
        data[i] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(FormatError):
        H5LiteFile(path)


def test_scalar_dataset(tmp_path):
    f = roundtrip(tmp_path, lambda w: w.create_dataset("s", np.float64(3.5)))
    ds = f["s"]
    assert ds.shape == ()
    assert ds.read() == 3.5
    f.close()


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

_dtypes = st.sampled_from([np.uint8, np.int32, np.int64, np.float32, np.float64])


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    dtype=_dtypes,
    compression=st.sampled_from([None, "zlib"]),
)
def test_roundtrip_property(tmp_path_factory, data, dtype, compression):
    """Any array round-trips bit-exactly through the container."""
    shape = data.draw(
        st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=3)
    )
    arr = data.draw(
        hnp.arrays(
            dtype=dtype,
            shape=tuple(shape),
            elements=hnp.from_dtype(np.dtype(dtype), allow_nan=False, allow_infinity=False),
        )
    )
    tmp = tmp_path_factory.mktemp("h5l") / "p.h5l"
    with H5LiteWriter(tmp) as w:
        w.create_dataset("d", arr, compression=compression)
    with H5LiteFile(tmp) as f:
        got = f["d"].read()
    np.testing.assert_array_equal(got, arr)


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_chunked_slice_matches_numpy(tmp_path_factory, data):
    """Property: any basic slice of a chunked dataset equals the same
    slice of the in-memory array."""
    shape = tuple(
        data.draw(st.lists(st.integers(min_value=1, max_value=12), min_size=2, max_size=3))
    )
    chunks = tuple(data.draw(st.integers(min_value=1, max_value=s)) for s in shape)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    arr = rng.integers(0, 1000, size=shape).astype(np.int64)

    sel = []
    for s in shape:
        if data.draw(st.booleans()):
            sel.append(data.draw(st.integers(min_value=0, max_value=s - 1)))
        else:
            a = data.draw(st.integers(min_value=0, max_value=s))
            b = data.draw(st.integers(min_value=a, max_value=s))
            sel.append(slice(a, b))
    sel = tuple(sel)

    tmp = tmp_path_factory.mktemp("h5l") / "p.h5l"
    with H5LiteWriter(tmp) as w:
        w.create_dataset("d", arr, chunks=chunks)
    with H5LiteFile(tmp) as f:
        got = f["d"][sel]
    np.testing.assert_array_equal(got, arr[sel])
