"""Tests for HMSA format support."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emd.hmsa import read_hmsa, write_hmsa
from repro.errors import FormatError
from repro.instrument import MovieSpec, PicoProbe
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def hyper_signal():
    probe = PicoProbe(RngRegistry(0), operator="alice")
    sig, _ = probe.acquire_hyperspectral(shape=(32, 32), n_channels=64)
    return sig


def test_hmsa_writes_pair(tmp_path, hyper_signal):
    xml_path, dat_path = write_hmsa(tmp_path / "acq", hyper_signal)
    assert xml_path.endswith(".xml") and dat_path.endswith(".dat")
    assert (tmp_path / "acq.xml").exists()
    assert (tmp_path / "acq.dat").exists()


def test_hmsa_roundtrip_data(tmp_path, hyper_signal):
    write_hmsa(tmp_path / "acq", hyper_signal)
    back = read_hmsa(tmp_path / "acq")
    np.testing.assert_array_equal(back.data, hyper_signal.data)
    assert back.metadata.acquisition_id == hyper_signal.metadata.acquisition_id
    assert back.metadata.operator == "alice"
    assert back.metadata.signal_type == "hyperspectral"
    assert back.metadata.microscope.beam_energy_kev == 300.0
    assert set(back.metadata.sample.elements) == set(
        hyper_signal.metadata.sample.elements
    )


def test_hmsa_roundtrip_movie(tmp_path):
    probe = PicoProbe(RngRegistry(0))
    sig, _ = probe.acquire_spatiotemporal(
        MovieSpec(n_frames=3, shape=(48, 48), n_particles=2, radius_range=(4, 7))
    )
    write_hmsa(tmp_path / "mov", sig)
    back = read_hmsa(tmp_path / "mov")
    np.testing.assert_array_equal(back.data, sig.data)
    assert [d.name for d in back.dims] == ["time", "height", "width"]


def test_hmsa_uid_links_files(tmp_path, hyper_signal):
    write_hmsa(tmp_path / "a", hyper_signal)
    write_hmsa(tmp_path / "b", hyper_signal)
    # Swap the binary halves: UID validation must catch it.
    (tmp_path / "a.dat").write_bytes((tmp_path / "b.dat").read_bytes())
    with pytest.raises(FormatError, match="UID mismatch"):
        read_hmsa(tmp_path / "a")


def test_hmsa_truncated_payload(tmp_path, hyper_signal):
    write_hmsa(tmp_path / "a", hyper_signal)
    data = (tmp_path / "a.dat").read_bytes()
    (tmp_path / "a.dat").write_bytes(data[: len(data) // 2])
    with pytest.raises(FormatError, match="payload"):
        read_hmsa(tmp_path / "a")


def test_hmsa_bad_xml(tmp_path, hyper_signal):
    write_hmsa(tmp_path / "a", hyper_signal)
    (tmp_path / "a.xml").write_text("<notHmsa/>")
    with pytest.raises(FormatError, match="not an HMSA"):
        read_hmsa(tmp_path / "a")
    (tmp_path / "a.xml").write_text("{json?}")
    with pytest.raises(FormatError, match="cannot parse"):
        read_hmsa(tmp_path / "a")


def test_hmsa_rejects_unsupported_dtype(tmp_path, hyper_signal):
    from dataclasses import replace

    bad = replace(hyper_signal, data=hyper_signal.data.astype(np.complex128))
    with pytest.raises(FormatError, match="dtype"):
        write_hmsa(tmp_path / "x", bad)
