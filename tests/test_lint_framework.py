"""Analyzer-framework tests: registry, resolver, config scoping,
diagnostics, suppressions, and the directory walker."""

from __future__ import annotations

import ast

import pytest

from repro.lint import (
    Analyzer,
    Diagnostic,
    ImportResolver,
    LintConfig,
    Rule,
    Severity,
    all_rules,
    discover_provider_names,
)


# -- diagnostics --------------------------------------------------------------


def test_severity_parse_and_ordering():
    assert Severity.parse("warn") is Severity.WARNING
    assert Severity.parse("Error") is Severity.ERROR
    assert Severity.ERROR > Severity.WARNING
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_diagnostic_format_and_dict():
    d = Diagnostic(
        path="a.py", line=3, col=5, rule_id="D101",
        severity=Severity.ERROR, message="no clocks",
    )
    assert d.format() == "a.py:3:5: D101 [error] no clocks"
    assert d.as_dict()["severity"] == "error"


def test_diagnostics_sort_by_location():
    ds = Analyzer(config=LintConfig(allow={})).lint_source(
        "import time\nimport random\nrandom.random()\nt = time.time()\n"
    )
    assert [d.line for d in ds] == sorted(d.line for d in ds)


# -- import resolver ----------------------------------------------------------


def test_resolver_handles_alias_forms():
    tree = ast.parse(
        "import time as _t\n"
        "from time import monotonic as mono\n"
        "import numpy.random\n"
    )
    r = ImportResolver(tree)
    assert r.resolve(ast.parse("_t.sleep", mode="eval").body) == "time.sleep"
    assert r.resolve(ast.parse("mono", mode="eval").body) == "time.monotonic"
    assert (
        r.resolve(ast.parse("numpy.random.rand", mode="eval").body)
        == "numpy.random.rand"
    )


def test_resolver_returns_none_for_unknown_roots():
    r = ImportResolver(ast.parse("import os\n"))
    assert r.resolve(ast.parse("sys.path", mode="eval").body) is None


# -- registry & custom rules --------------------------------------------------


def test_catalog_ids_are_unique_and_namespaced():
    catalog = all_rules()
    assert len(catalog) == len(set(catalog))
    for rid, cls in catalog.items():
        assert rid == cls.rule_id
        assert cls.summary


def test_analyzer_accepts_an_explicit_rule_subset():
    d101 = all_rules()["D101"]()
    analyzer = Analyzer(config=LintConfig(allow={}), rules=[d101])
    src = "import time, random\nrandom.random()\nt = time.time()\n"
    assert [d.rule_id for d in analyzer.lint_source(src)] == ["D101"]


def test_select_and_ignore_config():
    src = "import time, random\nrandom.random()\nt = time.time()\n"
    only = Analyzer(config=LintConfig(allow={}, select=frozenset({"D103"})))
    assert [d.rule_id for d in only.lint_source(src)] == ["D103"]
    without = Analyzer(config=LintConfig(allow={}, ignore=frozenset({"D103"})))
    assert [d.rule_id for d in without.lint_source(src)] == ["D101"]


# -- path-scoped allowances ---------------------------------------------------


def test_default_allowlist_covers_realtime_and_observer():
    cfg = LintConfig()
    assert cfg.allowed_for_path("src/repro/sim/realtime.py", "D101")
    assert cfg.allowed_for_path("src/repro/sim/realtime.py", "D102")
    assert cfg.allowed_for_path("src/repro/watcher/observer.py", "D102")
    # but not for other rules or other files
    assert not cfg.allowed_for_path("src/repro/sim/realtime.py", "D103")
    assert not cfg.allowed_for_path("src/repro/sim/core.py", "D101")


def test_allowance_suppresses_findings_by_path():
    src = "import time\nt = time.time()\n"
    cfg = LintConfig(allow={"legacy/*.py": frozenset({"D101"})})
    a = Analyzer(config=cfg)
    assert a.lint_source(src, path="legacy/old.py") == []
    assert [d.rule_id for d in a.lint_source(src, path="new/fresh.py")] == ["D101"]


# -- noqa ---------------------------------------------------------------------


def test_noqa_is_line_scoped():
    src = (
        "import time\n"
        "a = time.time()  # repro: noqa[D101] calibration baseline\n"
        "b = time.time()\n"
    )
    ds = Analyzer(config=LintConfig(allow={})).lint_source(src)
    assert [(d.rule_id, d.line) for d in ds] == [("D101", 3)]


def test_noqa_multiple_ids():
    src = (
        "import time, random\n"
        "t = time.time(); random.random()  # repro: noqa[D101, D103]\n"
    )
    assert Analyzer(config=LintConfig(allow={})).lint_source(src) == []


def test_noqa_file_blanket_suppresses_everything():
    src = (
        "# repro: noqa-file  demo script, determinism not required\n"
        "import time, random\n"
        "t = time.time()\n"
        "x = random.random()\n"
    )
    assert Analyzer(config=LintConfig(allow={})).lint_source(src) == []


def test_noqa_file_targeted_leaves_other_rules_firing():
    src = (
        "# repro: noqa-file[D101]  this module bridges to the wall clock\n"
        "import time, random\n"
        "t = time.time()\n"
        "x = random.random()\n"
    )
    ds = Analyzer(config=LintConfig(allow={})).lint_source(src)
    assert [d.rule_id for d in ds] == ["D103"]


def test_noqa_file_markers_union_and_apply_anywhere_in_the_file():
    src = (
        "import time, random\n"
        "# repro: noqa-file[D101]\n"
        "t = time.time()\n"
        "x = random.random()\n"
        "# repro: noqa-file[D103]  (not just at the top)\n"
    )
    assert Analyzer(config=LintConfig(allow={})).lint_source(src) == []


def test_noqa_file_with_ids_is_not_a_blanket_line_noqa():
    # the -file marker must not be misparsed as a same-line suppression
    src = (
        "import time\n"
        "t = time.time()  # repro: noqa-file[D103]\n"
        "u = time.time()\n"
    )
    ds = Analyzer(config=LintConfig(allow={})).lint_source(src)
    assert [(d.rule_id, d.line) for d in ds] == [("D101", 2), ("D101", 3)]


# -- files & directories ------------------------------------------------------


def test_lint_paths_walks_directories_deterministically(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "pkg" / "a.py").write_text("import random\nrandom.random()\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
    a = Analyzer(config=LintConfig(allow={}))
    ds = a.lint_paths([str(tmp_path)])
    assert [d.rule_id for d in ds] == ["D103", "D101"]  # a.py then b.py
    assert ds == a.lint_paths([str(tmp_path)])  # stable across runs


def test_syntax_errors_surface_as_diagnostics(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    ds = Analyzer().lint_file(str(bad))
    assert len(ds) == 1
    assert ds[0].rule_id == "E000"
    assert ds[0].severity is Severity.ERROR


# -- provider discovery -------------------------------------------------------


def test_discover_provider_names_scans_provider_shaped_classes(tmp_path):
    (tmp_path / "mod.py").write_text(
        "class GoodProvider:\n"
        "    name = 'custom_thing'\n"
        "    def run(self, body): ...\n"
        "    def status(self, action_id): ...\n"
        "class NotAProvider:\n"
        "    name = 'just_a_name'\n"
    )
    names = discover_provider_names(str(tmp_path))
    assert names == frozenset({"custom_thing"})


def test_discover_provider_names_finds_the_real_registry():
    names = discover_provider_names()
    assert {"transfer", "compute", "search_ingest", "local_compress"} <= names


# -- writing a new rule against the public API --------------------------------


def test_custom_rule_via_public_base_class():
    class NoPrint(Rule):
        rule_id = "D999"
        severity = Severity.WARNING
        summary = "no print in library code"
        interests = (ast.Call,)

        def visit(self, ctx, node):
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                ctx.report(self, node, "print() call")

    a = Analyzer(config=LintConfig(allow={}), rules=[NoPrint()])
    ds = a.lint_source("print('hi')\n")
    assert [(d.rule_id, d.severity) for d in ds] == [("D999", Severity.WARNING)]


def test_resolver_resolves_relative_imports_with_module_context():
    # the regression behind the call-graph gaps: `from .gate import
    # ServiceGate` used to stay unresolved, dropping intra-package edges
    tree = ast.parse(
        "from .gate import ServiceGate\n"
        "from ..sim import core\n"
        "from . import metrics as m\n"
    )
    r = ImportResolver(tree, module="repro.chaos.controller")
    assert (
        r.resolve(ast.parse("ServiceGate", mode="eval").body)
        == "repro.chaos.gate.ServiceGate"
    )
    assert r.resolve(ast.parse("core.run", mode="eval").body) == "repro.sim.core.run"
    assert r.resolve(ast.parse("m", mode="eval").body) == "repro.chaos.metrics"


def test_resolver_relative_imports_in_a_package_init():
    # a package __init__ already *is* its package: one fewer level
    tree = ast.parse("from .gate import ServiceGate\n")
    r = ImportResolver(tree, module="repro.chaos", is_package=True)
    assert (
        r.resolve(ast.parse("ServiceGate", mode="eval").body)
        == "repro.chaos.gate.ServiceGate"
    )


def test_resolver_relative_imports_without_context_stay_unresolved():
    tree = ast.parse("from .gate import ServiceGate\n")
    r = ImportResolver(tree)
    assert r.resolve(ast.parse("ServiceGate", mode="eval").body) is None


def test_resolver_relative_import_climbing_past_the_root_is_dropped():
    tree = ast.parse("from ...nowhere import thing\n")
    r = ImportResolver(tree, module="repro.chaos")
    assert r.resolve(ast.parse("thing", mode="eval").body) is None
