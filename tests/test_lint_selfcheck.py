"""Tier-1 self-check: the analyzer over the entire ``repro`` package.

This is the permanent correctness gate: any future PR that sneaks a
wall-clock read, an unseeded RNG draw, a hash-ordered iteration, or a
mis-wired flow definition into ``src/repro`` fails the ordinary pytest
run — no separate CI step needed.
"""

from __future__ import annotations

import os

import repro
from repro.lint import Analyzer, Severity

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


def test_repro_package_is_lint_clean():
    diagnostics = Analyzer().lint_paths([PACKAGE_ROOT])
    errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
    assert not errors, "lint errors in src/repro:\n" + "\n".join(
        d.format() for d in errors
    )


def test_selfcheck_covers_the_whole_package():
    # Guard against the self-check silently linting nothing: the package
    # has dozens of modules and the walk must reach the deep ones.
    py_files = [
        os.path.join(dirpath, f)
        for dirpath, _dirs, files in os.walk(PACKAGE_ROOT)
        for f in files
        if f.endswith(".py")
    ]
    assert len(py_files) > 60
    assert any(p.endswith(os.path.join("sim", "core.py")) for p in py_files)


def test_rule_catalog_is_complete():
    # The catalog the self-check runs with: >= 10 rules across the three
    # packs, ids well-formed.
    from repro.lint import all_rules

    catalog = all_rules()
    assert len(catalog) >= 10
    packs = {rid[0] for rid in catalog}
    assert packs == {"D", "S", "F"}
    assert all(len(rid) == 4 for rid in catalog)
