"""Tier-1 self-check: the analyzer over the entire ``repro`` package.

This is the permanent correctness gate: any future PR that sneaks a
wall-clock read, an unseeded RNG draw, a hash-ordered iteration, a
mis-wired flow definition, or a leaked span/timer/temp-file into
``src/repro`` fails the ordinary pytest run — no separate CI step
needed.
"""

from __future__ import annotations

import os

import repro
from repro.lint import Analyzer, Severity

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


def test_repro_package_is_lint_clean():
    diagnostics = Analyzer().lint_paths([PACKAGE_ROOT])
    errors = [d for d in diagnostics if d.severity >= Severity.ERROR]
    assert not errors, "lint errors in src/repro:\n" + "\n".join(
        d.format() for d in errors
    )


def test_repro_package_has_no_lifecycle_errors():
    # The R5xx pack specifically: every span is finished, every timer
    # cancelled or awaited, every temp file cleaned on failure paths.
    analyzer = Analyzer()
    diagnostics = analyzer.lint_paths([PACKAGE_ROOT])
    lifecycle = [d for d in diagnostics if d.rule_id.startswith("R5")]
    assert not lifecycle, "resource-lifecycle findings:\n" + "\n".join(
        d.format() for d in lifecycle
    )


def test_selfcheck_covers_the_whole_package():
    # Guard against the self-check silently linting nothing: the package
    # has dozens of modules and the walk must reach the deep ones.
    py_files = [
        os.path.join(dirpath, f)
        for dirpath, _dirs, files in os.walk(PACKAGE_ROOT)
        for f in files
        if f.endswith(".py")
    ]
    assert len(py_files) > 60
    assert any(p.endswith(os.path.join("sim", "core.py")) for p in py_files)


def test_selfcheck_reports_statistics():
    analyzer = Analyzer()
    analyzer.lint_paths([PACKAGE_ROOT])
    stats = analyzer.stats.as_dict()
    assert stats["files_total"] > 60
    assert stats["files_analyzed"] == stats["files_total"]
    assert stats["cache_hit_rate"] == 0.0  # no cache passed


def test_rule_catalog_is_complete():
    # The catalog the self-check runs with: >= 10 rules across the six
    # packs, ids well-formed.
    from repro.lint import all_rules

    catalog = all_rules()
    assert len(catalog) >= 10
    packs = {rid[0] for rid in catalog}
    assert packs == {"D", "S", "F", "R", "P", "N"}
    assert all(len(rid) == 4 for rid in catalog)
    # the new packs each registered their full complement
    assert {"R501", "R502", "R503", "R504"} <= set(catalog)
    assert {"P601", "P602", "P603"} <= set(catalog)
    assert {"N701", "N702", "N703", "N704", "N705"} <= set(catalog)


def test_no_findings_beyond_committed_baseline():
    # The ratchet: *any* new finding — warning or error — must either be
    # fixed or explicitly accepted by regenerating LINT_BASELINE.json
    # (`python -m repro lint --write-baseline`, the documented escape
    # hatch).  The committed baseline is the repo's acknowledged debt.
    from repro.lint import Baseline

    baseline_path = os.path.join(
        os.path.dirname(__file__), "..", "LINT_BASELINE.json"
    )
    assert os.path.exists(baseline_path), (
        "LINT_BASELINE.json is missing — regenerate it with "
        "`PYTHONPATH=src python -m repro lint src/repro --write-baseline`"
    )
    baseline = Baseline.load(baseline_path)
    diagnostics = Analyzer().lint_paths([PACKAGE_ROOT])
    fresh, _suppressed = baseline.apply(diagnostics)
    assert not fresh, (
        "new lint findings not in LINT_BASELINE.json (fix them, or "
        "accept with --write-baseline):\n"
        + "\n".join(d.format() for d in fresh)
    )
