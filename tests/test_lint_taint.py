"""Hand-checked taint-summary fixtures for :mod:`repro.lint.taint`:
propagation through returns, keyword arguments, comprehensions, and
bound methods, the sanitizer catalog, summary serialization, and the
incremental summary cache."""

from __future__ import annotations

import ast
import json
import os

from repro.lint import LintCache, analyze_module, build_taint_index
from repro.lint.taint import normalize_kinds


def index_of(**modules):
    """Build a resolved index from ``name=source`` module strings."""
    trees = {
        f"/proj/{name}.py": (name, ast.parse(src))
        for name, src in modules.items()
    }
    return build_taint_index(trees)


def kinds_of(index, qualname):
    kinds, _params = index.ret_of(qualname)
    return set(normalize_kinds(kinds))


# -- sources and returns -------------------------------------------------


def test_listing_return_is_order_tainted():
    idx = index_of(
        m="import os\n\ndef listing(root):\n    return [p for p in os.listdir(root)]\n"
    )
    assert kinds_of(idx, "m.listing") == {"order"}


def test_sorted_listing_return_is_clean():
    idx = index_of(
        m="import os\n\ndef listing(root):\n    return sorted(os.listdir(root))\n"
    )
    assert kinds_of(idx, "m.listing") == set()


def test_wall_clock_return_is_host_tainted():
    idx = index_of(
        m="import time\n\ndef stamp():\n    return time.time() * 1000.0\n"
    )
    assert kinds_of(idx, "m.stamp") == {"host"}


def test_env_read_is_host_tainted():
    idx = index_of(
        m="import os\n\ndef knob():\n    return os.getenv('REPRO_KNOB', '1')\n"
    )
    assert kinds_of(idx, "m.knob") == {"host"}


def test_id_return_is_ident_tainted():
    idx = index_of(m="def tag(obj):\n    return id(obj)\n")
    assert kinds_of(idx, "m.tag") == {"ident"}


def test_set_materialization_becomes_order():
    idx = index_of(
        m="def pick(values):\n    pool = {v for v in values}\n    return list(pool)\n"
    )
    assert kinds_of(idx, "m.pick") == {"order"}


def test_min_max_len_are_content_deterministic():
    idx = index_of(
        m=(
            "def low(values):\n    return min(set(values))\n"
            "def size(values):\n    return len(set(values))\n"
        )
    )
    assert kinds_of(idx, "m.low") == set()
    assert kinds_of(idx, "m.size") == set()


def test_fsum_sanitizes_order():
    idx = index_of(
        m="import math\n\ndef total(values):\n    return math.fsum(set(values))\n"
    )
    assert kinds_of(idx, "m.total") == set()


# -- interprocedural propagation ----------------------------------------


def test_taint_propagates_through_helper_returns():
    idx = index_of(
        m=(
            "import os\n"
            "\n"
            "def _scan(root):\n"
            "    return os.listdir(root)\n"
            "\n"
            "def relay(root):\n"
            "    return _scan(root)\n"
            "\n"
            "def outer(root):\n"
            "    return relay(root)\n"
        )
    )
    assert kinds_of(idx, "m._scan") == {"order"}
    assert kinds_of(idx, "m.relay") == {"order"}
    assert kinds_of(idx, "m.outer") == {"order"}


def test_taint_propagates_across_modules():
    idx = index_of(
        scan="import glob\n\ndef frames(pat):\n    return glob.glob(pat)\n",
        use="def order_of(pat):\n    return frames(pat)\n",
    )
    # bare-name fallback: `frames` is unambiguous project-wide
    assert kinds_of(idx, "use.order_of") == {"order"}


def test_param_flow_reaches_callee_sink_positionally():
    idx = index_of(
        m=(
            "import os\n"
            "\n"
            "def arm(env, delay):\n"
            "    yield env.timeout(delay)\n"
            "\n"
            "def drive(env, root):\n"
            "    for n, _ in enumerate(os.listdir(root)):\n"
            "        arm(env, n)\n"
        )
    )
    sinks = [
        (f.sink, set(f.kinds), f.via)
        for f in idx.findings_for("/proj/m.py")
    ]
    assert ("schedule", {"order"}, "arm") in sinks
    # and the callee's own summary records param 1 -> schedule
    assert "schedule" in idx.sink_params["m.arm"][1]


def test_param_flow_reaches_callee_sink_by_keyword():
    idx = index_of(
        m=(
            "import os\n"
            "\n"
            "def arm(env, delay=0.0):\n"
            "    yield env.timeout(delay)\n"
            "\n"
            "def drive(env, root):\n"
            "    for n, _ in enumerate(os.listdir(root)):\n"
            "        arm(env, delay=n)\n"
        )
    )
    sinks = [(f.sink, set(f.kinds)) for f in idx.findings_for("/proj/m.py")]
    assert ("schedule", {"order"}) in sinks


def test_bound_method_offset_shifts_positional_args():
    idx = index_of(
        m=(
            "import os\n"
            "\n"
            "class Pump:\n"
            "    def arm(self, env, delay):\n"
            "        yield env.timeout(delay)\n"
            "\n"
            "def drive(env, pump, root):\n"
            "    names = os.listdir(root)\n"
            "    pump.arm(env, names)\n"
        )
    )
    sinks = [
        (f.sink, set(f.kinds), f.via)
        for f in idx.findings_for("/proj/m.py")
    ]
    assert ("schedule", {"order"}, "arm") in sinks
    # self is param 0; the schedule-feeding param is `delay` at index 2
    assert "schedule" in idx.sink_params["m.Pump.arm"][2]


def test_comprehension_targets_bind_element_taint():
    idx = index_of(
        m=(
            "import os\n"
            "\n"
            "def sizes(root):\n"
            "    return [len(n) for n in os.listdir(root)]\n"
            "\n"
            "def pairs(root):\n"
            "    return {n: 1 for n in os.listdir(root)}\n"
        )
    )
    # the produced sequence inherits the generator's order even though
    # len() sanitizes each element
    assert kinds_of(idx, "m.sizes") == {"order"}
    assert kinds_of(idx, "m.pairs") == {"order"}


def test_keyed_store_is_an_ordering_barrier():
    idx = index_of(
        m=(
            "from concurrent.futures import as_completed\n"
            "\n"
            "def merge(futures):\n"
            "    out = {}\n"
            "    for fut in as_completed(futures):\n"
            "        out[futures[fut]] = fut.result()\n"
            "    return [out[k] for k in sorted(out)]\n"
        )
    )
    assert kinds_of(idx, "m.merge") == set()
    assert idx.findings_for("/proj/m.py") == []


def test_unstable_dict_attr_iteration_is_order_tainted():
    idx = index_of(
        m=(
            "class Reg:\n"
            "    def __init__(self):\n"
            "        self._items = {}\n"
            "\n"
            "    def drop(self, k):\n"
            "        del self._items[k]\n"
            "\n"
            "    def names(self):\n"
            "        return [k for k in self._items.keys()]\n"
        )
    )
    assert kinds_of(idx, "m.Reg.names") == {"order"}


def test_growing_dict_attr_is_not_flagged():
    # no deletions: insertion order is deterministic under a fixed
    # op sequence, so iteration is not a hazard
    idx = index_of(
        m=(
            "class Reg:\n"
            "    def __init__(self):\n"
            "        self._items = {}\n"
            "\n"
            "    def put(self, k, v):\n"
            "        self._items[k] = v\n"
            "\n"
            "    def names(self):\n"
            "        return [k for k in self._items.keys()]\n"
        )
    )
    assert kinds_of(idx, "m.Reg.names") == set()


# -- serialization and caching ------------------------------------------


def test_module_taint_payload_round_trips():
    src = (
        "import os, time\n"
        "\n"
        "def launder(root):\n"
        "    return os.listdir(root)\n"
        "\n"
        "def arm(env, root):\n"
        "    for n, _ in enumerate(launder(root)):\n"
        "        yield env.timeout(n + time.time())\n"
    )
    mt = analyze_module("/proj/m.py", "m", ast.parse(src))
    payload = mt.to_payload()
    # must survive an actual JSON round trip (the cache stores JSON)
    revived = type(mt).from_payload(
        "/proj/m.py", json.loads(json.dumps(payload))
    )
    assert revived.to_payload() == payload


def test_cached_summaries_produce_identical_findings(tmp_path):
    src = (
        "import os\n"
        "\n"
        "def arm(env, root):\n"
        "    for n, _ in enumerate(os.listdir(root)):\n"
        "        yield env.timeout(n)\n"
    )
    path = str(tmp_path / "m.py")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(src)
    trees = {path: ("m", ast.parse(src))}
    texts = {path: src}
    cache = LintCache(str(tmp_path / "cache.json"))

    cold = build_taint_index(trees, texts=texts, cache=cache)
    assert cold.recomputed == 1
    cache.save()

    warm_cache = LintCache(str(tmp_path / "cache.json"))
    warm = build_taint_index(trees, texts=texts, cache=warm_cache)
    assert warm.recomputed == 0
    assert [f.key() for f in warm.findings_for(path)] == [
        f.key() for f in cold.findings_for(path)
    ]


def test_summary_cache_invalidates_on_content_change(tmp_path):
    cache = LintCache(str(tmp_path / "cache.json"))
    src1 = "def f(x):\n    return x\n"
    src2 = "def f(x):\n    return id(x)\n"
    path = "/proj/m.py"
    idx1 = build_taint_index(
        {path: ("m", ast.parse(src1))}, texts={path: src1}, cache=cache
    )
    assert idx1.recomputed == 1
    idx2 = build_taint_index(
        {path: ("m", ast.parse(src2))}, texts={path: src2}, cache=cache
    )
    assert idx2.recomputed == 1  # bytes changed: summary recomputed
    assert kinds_of(idx2, "m.f") == {"ident"}


def test_summary_cache_survives_fingerprint_wipe(tmp_path):
    # set_fingerprint wipes findings but must keep summaries: they
    # depend only on file bytes and the engine version
    cache = LintCache(str(tmp_path / "cache.json"))
    src = "import os\n\ndef f(root):\n    return os.listdir(root)\n"
    path = "/proj/m.py"
    build_taint_index({path: ("m", ast.parse(src))}, texts={path: src}, cache=cache)
    cache.set_fingerprint("a-different-environment")
    assert cache.get_summary(path, src) is not None


def test_index_fingerprint_tracks_module_semantics():
    base = index_of(m="def f(x):\n    return x\n")
    same = index_of(m="def f(x):\n    return x\n")
    other = index_of(m="import os\n\ndef f(x):\n    return os.listdir(x)\n")
    assert base.fingerprint() == same.fingerprint()
    assert base.fingerprint() != other.fingerprint()


def test_findings_are_deterministically_ordered():
    src = (
        "import os, time\n"
        "\n"
        "def a(env, root):\n"
        "    for n, _ in enumerate(os.listdir(root)):\n"
        "        yield env.timeout(n)\n"
        "\n"
        "def b(env):\n"
        "    yield env.timeout(time.time())\n"
    )
    runs = [
        [
            f.key()
            for f in index_of(m=src).findings_for("/proj/m.py")
        ]
        for _ in range(3)
    ]
    assert runs[0] == runs[1] == runs[2]
    lines = [k[1] for k in runs[0]]
    assert lines == sorted(lines)


def test_stale_engine_version_is_ignored(tmp_path):
    cache_path = str(tmp_path / "cache.json")
    cache = LintCache(cache_path)
    src = "def f(x):\n    return x\n"
    path = "/proj/m.py"
    cache.put_summary(path, src, {"module": "m", "functions": {}})
    cache.save()
    raw = json.load(open(cache_path))
    raw["summaries"][os.path.abspath(path)]["version"] = -1
    json.dump(raw, open(cache_path, "w"))
    stale = LintCache(cache_path)
    assert stale.get_summary(path, src) is None
