"""Tests for deterministic RNG streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import RngRegistry, lognormal_from_median


def test_same_name_is_memoized():
    r = RngRegistry(seed=1)
    assert r.stream("a") is r.stream("a")


def test_same_seed_same_draws():
    a = RngRegistry(seed=7).stream("x").random(10)
    b = RngRegistry(seed=7).stream("x").random(10)
    np.testing.assert_array_equal(a, b)


def test_different_names_are_independent():
    r = RngRegistry(seed=7)
    a = r.stream("x").random(10)
    b = r.stream("y").random(10)
    assert not np.allclose(a, b)


def test_creation_order_does_not_matter():
    r1 = RngRegistry(seed=3)
    _ = r1.stream("first").random(100)  # consume another stream first
    x1 = r1.stream("second").random(5)

    r2 = RngRegistry(seed=3)
    x2 = r2.stream("second").random(5)
    np.testing.assert_array_equal(x1, x2)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(10)
    b = RngRegistry(seed=2).stream("x").random(10)
    assert not np.allclose(a, b)


def test_fork_is_reproducible_and_distinct():
    base = RngRegistry(seed=5)
    f1 = base.fork(1).stream("x").random(5)
    f1_again = RngRegistry(seed=5).fork(1).stream("x").random(5)
    f2 = base.fork(2).stream("x").random(5)
    np.testing.assert_array_equal(f1, f1_again)
    assert not np.allclose(f1, f2)


def test_lognormal_median_zero_sigma_exact():
    rng = np.random.default_rng(0)
    assert lognormal_from_median(rng, 12.5, 0.0) == 12.5
    assert lognormal_from_median(rng, 0.0, 0.5) == 0.0


def test_lognormal_rejects_negative():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        lognormal_from_median(rng, -1, 0.1)
    with pytest.raises(ValueError):
        lognormal_from_median(rng, 1, -0.1)


@given(st.floats(min_value=0.01, max_value=1e3), st.floats(min_value=0.01, max_value=1.0))
def test_lognormal_median_property(median, sigma):
    """Property: the sample median converges to the requested median."""
    rng = np.random.default_rng(1234)
    xs = np.array([lognormal_from_median(rng, median, sigma) for _ in range(400)])
    assert np.all(xs > 0)
    # Median of a lognormal equals exp(mu); allow generous sampling noise.
    assert np.median(xs) == pytest.approx(median, rel=0.35)
