"""Property/regression tests: span ↔ StepRecord timing consistency.

Across seeds (and including a run that fails mid-flow), the span tree
must reproduce the executor's StepRecord accounting: per-step
``overhead = observed - active``, per-run runtime equal to the root
span's duration, and critical-path tiles summing exactly to runtime.
"""

from __future__ import annotations

import itertools

import pytest

from repro.auth import AuthClient
from repro.auth.identity import FLOWS_SCOPE
from repro.flows import (
    ActionState,
    ActionStatus,
    FlowDefinition,
    FlowState,
    FlowsService,
    RunStatus,
)
from repro.core import run_campaign
from repro.obs import Observability, critical_path, derive_runs
from repro.rng import RngRegistry
from repro.sim import Environment

TOL = 1e-6


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_step_overhead_identity_across_seeds(seed):
    res = run_campaign("hyperspectral", duration_s=1200.0, seed=seed, obs=True)
    traces = {r.run_id: r for r in derive_runs(res.testbed.obs.tracer.spans)}
    checked = 0
    for record in res.completed_runs:
        trace = traces[record.run_id]
        assert len(trace.steps) == len(record.steps)
        for srec, strace in zip(record.steps, trace.steps):
            assert strace.name == srec.name
            assert strace.action_id == srec.action_id
            assert strace.polls == srec.polls
            # The span window is [entered_at, detected_at].
            assert strace.start == pytest.approx(srec.entered_at, abs=TOL)
            assert strace.end == pytest.approx(srec.detected_at, abs=TOL)
            # Identity: overhead == observed - active, from spans alone.
            assert strace.active_seconds == pytest.approx(
                srec.active_seconds, abs=TOL
            )
            assert strace.overhead_seconds == pytest.approx(
                srec.overhead_seconds, abs=TOL
            )
            checked += 1
    assert checked > 0


@pytest.mark.parametrize("seed", [1, 5])
def test_critical_path_tiles_every_run_exactly(seed):
    res = run_campaign("hyperspectral", duration_s=1200.0, seed=seed, obs=True)
    runs = derive_runs(res.testbed.obs.tracer.spans)
    assert runs
    for run in runs:
        segs = critical_path(run)
        assert sum(s.duration for s in segs) == pytest.approx(
            run.runtime_seconds, abs=TOL
        )
        # Tiles are contiguous and ordered.
        for a, b in zip(segs, segs[1:]):
            assert b.start >= a.end - TOL


# -- failing mid-flow run -----------------------------------------------------


class FlakyProvider:
    """Succeeds the first action, fails every later one after 2 s."""

    name = "mock"

    def __init__(self, env):
        self.env = env
        self._ids = itertools.count(1)
        self._start = {}

    def run(self, body):
        aid = f"mock-{next(self._ids)}"
        self._start[aid] = self.env.now
        return aid

    def status(self, action_id):
        if self.env.now - self._start[action_id] < 2.0:
            return ActionStatus(state=ActionState.ACTIVE)
        if action_id == "mock-1":
            return ActionStatus(
                state=ActionState.SUCCEEDED, result={}, active_seconds=2.0
            )
        return ActionStatus(
            state=ActionState.FAILED, error="boom", active_seconds=2.0
        )


def test_failed_run_trace_matches_records():
    env = Environment()
    obs = Observability(env)
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [FLOWS_SCOPE], now=0.0)
    svc = FlowsService(
        env,
        auth,
        RngRegistry(0),
        transition_latency_s=1.0,
        transition_sigma=0.0,
        poll_latency_s=0.0,
        tracer=obs.tracer,
        metrics=obs.metrics,
    )
    svc.register_provider(FlakyProvider(env))
    definition = FlowDefinition(
        title="two-step",
        start_at="A",
        states=(
            FlowState(name="A", provider="mock", next="B"),
            FlowState(name="B", provider="mock", next=None),
        ),
    )
    run = svc.run_flow(token, svc.deploy(definition), {})
    env.run(until=run.completed)
    assert run.status is RunStatus.FAILED

    (trace,) = derive_runs(obs.tracer.spans)
    assert trace.status == "FAILED"
    assert trace.runtime_seconds == pytest.approx(run.runtime_seconds, abs=TOL)
    assert len(trace.steps) == 2
    assert trace.steps[0].status == "SUCCEEDED"
    assert trace.steps[1].status == "FAILED"
    # The failed step's span still matches its StepRecord accounting.
    for srec, strace in zip(run.steps, trace.steps):
        assert strace.active_seconds == pytest.approx(srec.active_seconds, abs=TOL)
        assert strace.overhead_seconds == pytest.approx(
            srec.overhead_seconds, abs=TOL
        )
    # Failed runs are excluded from Fig. 4 but still tile cleanly.
    segs = critical_path(trace)
    assert sum(s.duration for s in segs) == pytest.approx(
        trace.runtime_seconds, abs=TOL
    )
