"""CLI surface: ``python -m repro lint`` argument handling, output
formats, exit codes, and the fail-on threshold."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as repro_main
from repro.lint.cli import main as lint_main


@pytest.fixture()
def dirty_tree(tmp_path):
    (tmp_path / "dirty.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "clean.py").write_text("def f(env):\n    return env.now\n")
    return tmp_path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_exit_one_on_errors_with_text_report(dirty_tree, capsys):
    assert lint_main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "dirty.py:2" in out
    assert "1 error(s)" in out


def test_json_format_is_machine_readable(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "D101"
    assert payload[0]["path"].endswith("dirty.py")
    assert payload[0]["severity"] == "error"


def test_sarif_format_has_rules_and_results(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    assert "D101" in rules
    assert rules["D101"]["shortDescription"]["text"]  # summary from catalog
    result = run["results"][0]
    assert result["ruleId"] == "D101" and result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]
    assert region["artifactLocation"]["uri"].endswith("dirty.py")
    assert region["region"]["startLine"] == 2


def test_output_writes_report_to_file(dirty_tree, tmp_path, capsys):
    out_path = tmp_path / "report.sarif"
    code = lint_main(
        [str(dirty_tree), "--format", "sarif", "--output", str(out_path)]
    )
    assert code == 1  # writing a report does not mask the exit code
    printed = capsys.readouterr().out
    assert f"wrote 1 finding(s) to {out_path}" in printed
    assert json.loads(out_path.read_text())["runs"][0]["results"]


def test_select_restricts_rules(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--select", "D103"]) == 0
    assert lint_main([str(dirty_tree), "--select", "D101"]) == 1
    capsys.readouterr()


def test_unknown_rule_id_is_a_usage_error(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--select", "Z123"]) == 2
    assert "unknown rule id" in capsys.readouterr().out


def test_nonexistent_path_is_a_usage_error_not_a_traceback(capsys):
    assert lint_main(["/does/not/exist"]) == 2
    assert "no such file or directory" in capsys.readouterr().out


def test_list_rules_prints_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("D101", "D106", "S201", "S202", "F301", "F304"):
        assert rid in out


def test_fail_on_warn_threshold(tmp_path, capsys):
    # All shipped rules are errors; verify the threshold plumbing via a
    # clean tree (exit 0 either way) and the argparse choices contract.
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path), "--fail-on", "warn"]) == 0
    with pytest.raises(SystemExit):
        lint_main([str(tmp_path), "--fail-on", "nonsense"])
    capsys.readouterr()


def test_repro_main_lint_subcommand(dirty_tree, capsys):
    assert repro_main(["lint", str(dirty_tree)]) == 1
    assert "D101" in capsys.readouterr().out


def test_repro_main_lint_defaults_to_package_and_is_clean(capsys):
    # The shipped tree is the acceptance criterion: zero errors.
    assert repro_main(["lint", "--fail-on", "error"]) == 0
    capsys.readouterr()


# -- incremental cache --------------------------------------------------------


def test_cache_warm_run_reports_full_hit_rate(dirty_tree, tmp_path, capsys):
    cache = tmp_path / "cache.json"
    args = [
        str(dirty_tree), "--cache", str(cache),
        "--format", "json", "--statistics",
    ]
    assert lint_main(args) == 1
    cold = json.loads(capsys.readouterr().out)
    assert cold["statistics"]["cache_hit_rate"] == 0.0
    assert cache.exists()
    assert lint_main(args) == 1
    warm = json.loads(capsys.readouterr().out)
    assert warm["statistics"]["cache_hit_rate"] == 1.0
    assert warm["statistics"]["files_cached"] == warm["statistics"]["files_total"]
    # cached findings are byte-identical to analyzed ones
    assert warm["findings"] == cold["findings"]


def test_cache_invalidated_only_for_the_changed_file(dirty_tree, tmp_path, capsys):
    cache = tmp_path / "cache.json"
    args = [
        str(dirty_tree), "--cache", str(cache),
        "--format", "json", "--statistics",
    ]
    lint_main(args)
    capsys.readouterr()
    (dirty_tree / "clean.py").write_text("def f(env):\n    return env.now + 1\n")
    lint_main(args)
    stats = json.loads(capsys.readouterr().out)["statistics"]
    assert stats["files_analyzed"] == 1
    assert stats["files_cached"] == stats["files_total"] - 1


def test_no_cache_flag_disables_caching(dirty_tree, tmp_path, capsys):
    cache = tmp_path / "cache.json"
    lint_main([str(dirty_tree), "--cache", str(cache), "--no-cache"])
    assert not cache.exists()
    capsys.readouterr()


def test_json_without_statistics_stays_a_plain_list(dirty_tree, capsys):
    # the machine interface: no envelope unless --statistics asks for it
    assert lint_main([str(dirty_tree), "--no-cache", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload, list)


def test_statistics_text_block(dirty_tree, tmp_path, capsys):
    code = lint_main(
        [str(dirty_tree), "--cache", str(tmp_path / "c.json"), "--statistics"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "-- statistics --" in out
    assert "files analyzed" in out
    assert "cache hit rate" in out
    assert "wall time" in out
    assert "D101: 1" in out


# -- baseline ratchet ---------------------------------------------------------


def test_baseline_ratchet_suppresses_recorded_debt(dirty_tree, tmp_path, capsys):
    base = tmp_path / "base.json"
    code = lint_main(
        [str(dirty_tree), "--no-cache", "--write-baseline", "--baseline", str(base)]
    )
    assert code == 0
    assert "wrote baseline" in capsys.readouterr().out
    # the recorded debt no longer fails the run...
    assert lint_main([str(dirty_tree), "--no-cache", "--baseline", str(base)]) == 0
    capsys.readouterr()
    # ...but new findings still do
    (dirty_tree / "new.py").write_text("import random\nrandom.random()\n")
    assert lint_main([str(dirty_tree), "--no-cache", "--baseline", str(base)]) == 1
    out = capsys.readouterr().out
    assert "D103" in out and "D101" not in out


def test_baseline_suppression_count_in_statistics(dirty_tree, tmp_path, capsys):
    base = tmp_path / "base.json"
    lint_main(
        [str(dirty_tree), "--no-cache", "--write-baseline", "--baseline", str(base)]
    )
    capsys.readouterr()
    lint_main(
        [
            str(dirty_tree), "--no-cache", "--baseline", str(base),
            "--format", "json", "--statistics",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["statistics"]["suppressed_by_baseline"] == 1


def test_missing_baseline_is_a_usage_error(dirty_tree, capsys):
    code = lint_main(
        [str(dirty_tree), "--no-cache", "--baseline", "/does/not/exist.json"]
    )
    assert code == 2
    assert "no such baseline" in capsys.readouterr().out


# -- git changed-only mode ----------------------------------------------------


def test_changed_only_lints_only_modified_files(tmp_path, monkeypatch, capsys):
    import subprocess

    repo = tmp_path / "repo"
    repo.mkdir()
    (repo / "stale.py").write_text("import time\nt = time.time()\n")
    (repo / "fresh.py").write_text("x = 1\n")
    git = ["git", "-c", "user.email=t@t.invalid", "-c", "user.name=t"]
    subprocess.run(["git", "init", "-q"], cwd=repo, check=True)
    subprocess.run(["git", "add", "."], cwd=repo, check=True)
    subprocess.run(git + ["commit", "-qm", "seed"], cwd=repo, check=True)
    (repo / "fresh.py").write_text("import random\nrandom.random()\n")
    monkeypatch.chdir(repo)
    assert lint_main([".", "--no-cache", "--changed-only"]) == 1
    out = capsys.readouterr().out
    # the committed-and-unchanged D101 in stale.py is out of scope
    assert "fresh.py" in out and "stale.py" not in out


def test_changed_only_includes_untracked_files(tmp_path, monkeypatch, capsys):
    import subprocess

    repo = tmp_path / "repo"
    repo.mkdir()
    (repo / "seed.py").write_text("x = 1\n")
    git = ["git", "-c", "user.email=t@t.invalid", "-c", "user.name=t"]
    subprocess.run(["git", "init", "-q"], cwd=repo, check=True)
    subprocess.run(["git", "add", "."], cwd=repo, check=True)
    subprocess.run(git + ["commit", "-qm", "seed"], cwd=repo, check=True)
    (repo / "new.py").write_text("import time\ntime.time()\n")
    monkeypatch.chdir(repo)
    assert lint_main([".", "--no-cache", "--changed-only"]) == 1
    assert "new.py" in capsys.readouterr().out


def test_changed_only_outside_a_work_tree_is_a_usage_error(
    tmp_path, monkeypatch, capsys
):
    (tmp_path / "a.py").write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
    code = lint_main([".", "--no-cache", "--changed-only"])
    assert code == 2
    assert "requires a git work tree" in capsys.readouterr().out


def test_explain_prints_docs_and_example_pair(capsys):
    assert lint_main(["--explain", "N701"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("N701  [error]")
    assert "order-tainted value reaches a scheduling sink" in out
    # the docstring body and both example twins are shown
    assert "bad:" in out and "good:" in out
    assert "os.listdir(root)" in out
    assert "sorted(os.listdir(root))" in out


def test_explain_is_case_insensitive(capsys):
    assert lint_main(["--explain", "d101"]) == 0
    assert capsys.readouterr().out.startswith("D101")


def test_explain_unknown_rule_is_a_usage_error(capsys):
    assert lint_main(["--explain", "Z999"]) == 2
    assert "unknown rule id" in capsys.readouterr().out


def test_explain_examples_exist_for_every_n7_rule(capsys):
    for rid in ("N701", "N702", "N703", "N704", "N705"):
        assert lint_main(["--explain", rid]) == 0
        out = capsys.readouterr().out
        assert "bad:" in out and "good:" in out
