"""CLI surface: ``python -m repro lint`` argument handling, output
formats, exit codes, and the fail-on threshold."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as repro_main
from repro.lint.cli import main as lint_main


@pytest.fixture()
def dirty_tree(tmp_path):
    (tmp_path / "dirty.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "clean.py").write_text("def f(env):\n    return env.now\n")
    return tmp_path


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_exit_one_on_errors_with_text_report(dirty_tree, capsys):
    assert lint_main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "dirty.py:2" in out
    assert "1 error(s)" in out


def test_json_format_is_machine_readable(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "D101"
    assert payload[0]["path"].endswith("dirty.py")
    assert payload[0]["severity"] == "error"


def test_sarif_format_has_rules_and_results(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
    assert "D101" in rules
    assert rules["D101"]["shortDescription"]["text"]  # summary from catalog
    result = run["results"][0]
    assert result["ruleId"] == "D101" and result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]
    assert region["artifactLocation"]["uri"].endswith("dirty.py")
    assert region["region"]["startLine"] == 2


def test_output_writes_report_to_file(dirty_tree, tmp_path, capsys):
    out_path = tmp_path / "report.sarif"
    code = lint_main(
        [str(dirty_tree), "--format", "sarif", "--output", str(out_path)]
    )
    assert code == 1  # writing a report does not mask the exit code
    printed = capsys.readouterr().out
    assert f"wrote 1 finding(s) to {out_path}" in printed
    assert json.loads(out_path.read_text())["runs"][0]["results"]


def test_select_restricts_rules(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--select", "D103"]) == 0
    assert lint_main([str(dirty_tree), "--select", "D101"]) == 1
    capsys.readouterr()


def test_unknown_rule_id_is_a_usage_error(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--select", "Z123"]) == 2
    assert "unknown rule id" in capsys.readouterr().out


def test_nonexistent_path_is_a_usage_error_not_a_traceback(capsys):
    assert lint_main(["/does/not/exist"]) == 2
    assert "no such file or directory" in capsys.readouterr().out


def test_list_rules_prints_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("D101", "D106", "S201", "S202", "F301", "F304"):
        assert rid in out


def test_fail_on_warn_threshold(tmp_path, capsys):
    # All shipped rules are errors; verify the threshold plumbing via a
    # clean tree (exit 0 either way) and the argparse choices contract.
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path), "--fail-on", "warn"]) == 0
    with pytest.raises(SystemExit):
        lint_main([str(tmp_path), "--fail-on", "nonsense"])
    capsys.readouterr()


def test_repro_main_lint_subcommand(dirty_tree, capsys):
    assert repro_main(["lint", str(dirty_tree)]) == 1
    assert "D101" in capsys.readouterr().out


def test_repro_main_lint_defaults_to_package_and_is_clean(capsys):
    # The shipped tree is the acceptance criterion: zero errors.
    assert repro_main(["lint", "--fail-on", "error"]) == 0
    capsys.readouterr()
