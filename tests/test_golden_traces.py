"""Golden-trace bit-identity suite: the gate for kernel/fabric perf work.

Each checked-in golden under ``tests/goldens/`` is the full observable
fingerprint of one shipped campaign — step-level event trace, run/step
transition trace, span stream hash, Table 1 and Fig. 4 numbers —
recorded on the pre-optimization kernel and fabric.  Replaying the same
campaign on the current code must reproduce every byte.

``trace=True`` replays pin the kernel to the instrumented slow path
(the trace hook disables ``_run_fast``), so a second set of untraced
replays checks that the fast path lands on the same Table 1 / Fig. 4
numbers — the two dispatch paths must be observably indistinguishable.
"""

from __future__ import annotations

import os
from dataclasses import asdict

import pytest

from repro.core.goldens import (
    GOLDEN_SPECS,
    capture_golden,
    golden_filename,
    read_golden,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

_IDS = [f"{k}-{uc}-s{seed}-{tb}" for k, uc, seed, tb in GOLDEN_SPECS]


def _load(kind: str, use_case: str, seed: int, tiebreak: str) -> dict:
    path = os.path.join(GOLDEN_DIR, golden_filename(kind, use_case, seed, tiebreak))
    assert os.path.exists(path), f"missing golden: {path}"
    return read_golden(path)


def test_golden_set_is_complete():
    recorded = sorted(f for f in os.listdir(GOLDEN_DIR) if f.endswith(".json.gz"))
    expected = sorted(golden_filename(*spec) for spec in GOLDEN_SPECS)
    assert recorded == expected


@pytest.mark.parametrize(("kind", "use_case", "seed", "tiebreak"), GOLDEN_SPECS, ids=_IDS)
def test_replay_is_bit_identical(kind, use_case, seed, tiebreak):
    golden = _load(kind, use_case, seed, tiebreak)
    replay = capture_golden(kind, use_case, seed, tiebreak)
    # Compare the event trace first and with counts, so a divergence
    # fails with a readable position instead of a giant dict diff.
    g_events, r_events = golden["events"], replay["events"]
    assert len(r_events) == len(g_events)
    for i, (g, r) in enumerate(zip(g_events, r_events)):
        assert r == g, f"trace diverges at event {i}: golden={g!r} replay={r!r}"
    assert replay == golden


@pytest.mark.parametrize(
    ("kind", "use_case", "seed", "tiebreak"),
    [spec for spec in GOLDEN_SPECS if spec[2] == 1],
    ids=[i for i in _IDS if "-s1-" in i],
)
def test_fast_path_matches_goldens(kind, use_case, seed, tiebreak):
    """Untraced replays (fast dispatch path) land on the golden numbers."""
    from repro.chaos import delivery_breakdown, run_chaos_campaign
    from repro.core.campaign import run_campaign
    from repro.core.stats import fig4_samples

    golden = _load(kind, use_case, seed, tiebreak)
    if kind == "campaign":
        res = run_campaign(
            use_case, duration_s=3600.0, seed=seed, tiebreak=tiebreak
        )
    else:
        res = run_chaos_campaign(
            kind, use_case=use_case, duration_s=3600.0, seed=seed, tiebreak=tiebreak
        )
        assert delivery_breakdown(res) == golden["breakdown"]
    assert res.trace is None  # really the uninstrumented path
    assert asdict(res.table1()) == golden["table1"]
    assert fig4_samples(res.runs) == golden["fig4"]
