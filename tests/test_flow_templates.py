"""Edge cases for ``resolve_template`` (nesting, the ``$$.`` escape,
error text) and ``FlowDefinition`` structural validation."""

from __future__ import annotations

import pytest

from repro.errors import FlowDefinitionError
from repro.flows import FlowDefinition, FlowState, resolve_template


CTX = {
    "input": {"path": "/a.emd", "depth": {"leaf": 7}},
    "states": {"TransferData": {"task_id": "t-1"}},
}


# -- nesting ------------------------------------------------------------------


def test_nested_dicts_and_lists_resolve_recursively():
    value = {
        "files": ["$.input.path", {"deep": "$.input.depth.leaf"}],
        "meta": {"task": "$.states.TransferData.task_id", "n": 3},
    }
    assert resolve_template(value, CTX) == {
        "files": ["/a.emd", {"deep": 7}],
        "meta": {"task": "t-1", "n": 3},
    }


def test_non_string_scalars_pass_through():
    assert resolve_template(42, CTX) == 42
    assert resolve_template(None, CTX) is None
    assert resolve_template([1, 2.5, True], CTX) == [1, 2.5, True]


# -- the $$. escape -----------------------------------------------------------


def test_dollar_escape_yields_literal_prefix():
    assert resolve_template("$$.not.a.path", CTX) == "$.not.a.path"


def test_dollar_escape_works_nested_and_needs_no_context():
    assert resolve_template({"doc": ["$$.input"]}, {}) == {"doc": ["$.input"]}


def test_single_sigil_still_resolves():
    assert resolve_template("$.input.path", CTX) == "/a.emd"


# -- error text ---------------------------------------------------------------


def test_missing_path_error_names_the_failing_segment():
    with pytest.raises(FlowDefinitionError, match=r"segment 'nope'"):
        resolve_template("$.input.nope", CTX)


def test_missing_path_error_lists_available_keys():
    with pytest.raises(FlowDefinitionError, match=r"depth.*path|path.*depth"):
        resolve_template("$.input.missing", CTX)


def test_descent_into_non_dict_reports_node_type():
    with pytest.raises(FlowDefinitionError, match=r"segment 'deeper'.*str"):
        resolve_template("$.input.path.deeper", CTX)


# -- FlowDefinition validation ------------------------------------------------


def _state(name, next=None):
    return FlowState(name=name, provider="transfer", next=next)


def test_unknown_start_state_raises():
    with pytest.raises(FlowDefinitionError, match=r"start state 'Nope'"):
        FlowDefinition(title="t", start_at="Nope", states=(_state("A"),))


def test_dangling_next_raises():
    with pytest.raises(FlowDefinitionError, match=r"unknown state 'Gone'"):
        FlowDefinition(
            title="t", start_at="A", states=(_state("A", next="Gone"),)
        )


def test_unreachable_state_raises():
    with pytest.raises(FlowDefinitionError, match=r"unreachable"):
        FlowDefinition(
            title="t", start_at="A", states=(_state("A"), _state("Orphan"))
        )


def test_cycle_raises():
    with pytest.raises(FlowDefinitionError, match=r"cycle"):
        FlowDefinition(
            title="t",
            start_at="A",
            states=(_state("A", next="B"), _state("B", next="A")),
        )


def test_duplicate_names_and_empty_states_raise():
    with pytest.raises(FlowDefinitionError, match=r"duplicate"):
        FlowDefinition(title="t", start_at="A", states=(_state("A"), _state("A")))
    with pytest.raises(FlowDefinitionError, match=r"no states"):
        FlowDefinition(title="t", start_at="A", states=())
