"""Tests for the future-work extensions (compression, 4-D use case)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_campaign, use_case_by_name
from repro.core.extensions import (
    COMPRESS_STATE,
    CompressionSpec,
    LZ4_LIKE,
    SPECTRAL_MOVIE_USE_CASE,
    ZSTD_LIKE,
    analyze_virtual_spectral_movie,
    spectral_movie_cost_model,
)
from repro.core.functions import file_descriptor
from repro.core.tools import TRANSFER_STATE
from repro.errors import FlowError
from repro.instrument import PicoProbe
from repro.rng import RngRegistry
from repro.search import validate_datacite
from repro.storage import VirtualFS
from repro.testbed import DEFAULT_CALIBRATION


def test_compression_spec_validation():
    with pytest.raises(FlowError):
        CompressionSpec("bad", ratio=0.5, compress_bytes_per_s=1e6)
    with pytest.raises(FlowError):
        CompressionSpec("bad", ratio=2.0, compress_bytes_per_s=0)


def test_compressed_campaign_has_compress_step():
    res = run_campaign(
        "spatiotemporal", duration_s=900, seed=2, compression=ZSTD_LIKE
    )
    run = res.completed_runs[0]
    names = [s.name for s in run.steps]
    assert names[0] == COMPRESS_STATE
    assert TRANSFER_STATE in names
    # The transfer moved the compressed byte count.
    xfer = run.step(TRANSFER_STATE)
    expected = SPECTRAL_MOVIE_USE_CASE  # silence linter; real check below
    assert xfer.result["bytes"] == pytest.approx(1200e6 / ZSTD_LIKE.ratio)


def test_compression_shrinks_transfer_time():
    base = run_campaign("spatiotemporal", duration_s=1200, seed=2)
    comp = run_campaign("spatiotemporal", duration_s=1200, seed=2, compression=ZSTD_LIKE)

    def median_transfer(res):
        return float(
            np.median([r.step(TRANSFER_STATE).active_seconds for r in res.completed_runs])
        )

    assert median_transfer(comp) < median_transfer(base) * 0.7


def test_compression_charges_local_time():
    res = run_campaign("spatiotemporal", duration_s=900, seed=2, compression=ZSTD_LIKE)
    run = res.completed_runs[0]
    step = run.step(COMPRESS_STATE)
    # 1.2 GB at 140 MB/s ≈ 8.6 s of user-machine work.
    assert 4 < step.active_seconds < 20


def test_invalid_compression_argument():
    with pytest.raises(ValueError, match="CompressionSpec"):
        run_campaign("spatiotemporal", duration_s=300, compression="zstd")


def test_spectral_movie_use_case_registered():
    uc = use_case_by_name("spectral-movie")
    assert uc is SPECTRAL_MOVIE_USE_CASE
    assert uc.file_size_bytes == pytest.approx(9.6e9)
    assert len(uc.shape) == 4


def test_spectral_movie_virtual_analysis():
    probe = PicoProbe(RngRegistry(0), operator="x")
    uc = SPECTRAL_MOVIE_USE_CASE
    md = probe.stamp_metadata(uc.signal_type, uc.shape, uc.dtype, uc.sample, 0.0)
    fs = VirtualFS("u")
    vf = fs.create("/transfer/sm.emd", uc.file_size_bytes, created_at=0, metadata=md)
    doc = analyze_virtual_spectral_movie(file_descriptor(vf, "/eagle/sm.emd"))
    validate_datacite(doc)
    assert doc["experiment"]["shape"] == [600, 200, 200, 100]
    assert "elemental_timeseries" in doc["derived_products"]

    cost = spectral_movie_cost_model(DEFAULT_CALIBRATION, RngRegistry(0))
    c = np.median([cost((), {"file": file_descriptor(vf, "/d")}) for _ in range(30)])
    # ~33 s/GB * 9.6 GB + 600 frames * 0.013 ≈ 325 s.
    assert 200 < c < 500


def test_spectral_movie_campaign_completes_few_flows():
    res = run_campaign("spectral-movie", seed=3)
    assert 1 <= len(res.completed_runs) <= 4  # "vastly increasing data volume"
