"""Tier-1 gate: the shipped campaign is schedule-race-free.

The repo's own model must pass its own sanitizer: running the example
campaign under ``Environment(sanitize=True)`` reports zero same-tick
ordering hazards, and rerunning it with the tie-break reversed produces
a byte-identical event trace.  Any regression that makes campaign
behaviour depend on insertion order fails here before it ships.
"""

from __future__ import annotations

from repro.core.sanitize import sanitize_campaign


def test_shipped_campaign_is_schedule_clean():
    result = sanitize_campaign("hyperspectral", duration_s=600.0, seed=1)
    assert result.races_forward == []
    assert result.races_reverse == []
    assert result.trace_forward == result.trace_reverse
    assert result.clean
    assert result.diagnostics() == []
    # The run itself did real work — this is not vacuous cleanliness.
    assert len(result.forward.completed_runs) >= 3


def test_sanitize_cli_exits_zero_on_the_shipped_campaign(capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["sanitize", "hyperspectral", "--duration", "400"]) == 0
    out = capsys.readouterr().out
    assert "schedule-clean" in out
