"""Tests for the wall-clock-paced environment."""

from __future__ import annotations

import time

import pytest

from repro.errors import SimulationError
from repro.sim import RealtimeEnvironment


def test_speedup_validation():
    with pytest.raises(SimulationError):
        RealtimeEnvironment(speedup=0)


def test_realtime_paces_to_wall_clock():
    # 0.5 simulated seconds at 10x speedup ≈ 0.05 wall seconds.
    env = RealtimeEnvironment(speedup=10.0)
    ticks = []

    def proc(env):
        for _ in range(5):
            yield env.timeout(0.1)
            ticks.append(env.now)

    env.process(proc(env))
    t0 = time.monotonic()
    env.run()
    elapsed = time.monotonic() - t0
    assert ticks == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])
    # Paced: at least ~0.04 s of wall time, not instantaneous.
    assert 0.03 < elapsed < 2.0


def test_realtime_fast_speedup_is_snappy():
    env = RealtimeEnvironment(speedup=1000.0)

    def proc(env):
        yield env.timeout(5.0)

    env.process(proc(env))
    t0 = time.monotonic()
    env.run()
    assert time.monotonic() - t0 < 1.0
    assert env.now == 5.0


def test_realtime_empty_queue_raises_like_base():
    env = RealtimeEnvironment(speedup=100)
    with pytest.raises(SimulationError, match="no more events"):
        env.step()


def test_realtime_results_match_pure_simulation():
    """Pacing must not change event ordering or values."""
    from repro.sim import Environment

    def program(env, log):
        def worker(env, name, d):
            yield env.timeout(d)
            log.append((round(env.now, 6), name))

        env.process(worker(env, "a", 0.02))
        env.process(worker(env, "b", 0.01))
        env.process(worker(env, "c", 0.03))
        env.run()

    pure_log: list = []
    program(Environment(), pure_log)
    rt_log: list = []
    program(RealtimeEnvironment(speedup=50), rt_log)
    assert pure_log == rt_log
