"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


def test_campaign_command(capsys):
    rc = main(["campaign", "hyperspectral", "--duration", "600", "--seed", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Total flow runs" in out
    assert "Hyperspectral" in out


def test_campaign_both(capsys):
    rc = main(["campaign", "both", "--duration", "400"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Hyperspectral" in out and "Spatiotemporal" in out


def test_portal_command(tmp_path, capsys):
    rc = main(["portal", "--duration", "400", "--output", str(tmp_path / "site")])
    assert rc == 0
    assert (tmp_path / "site" / "index.html").exists()


def test_quicklook_command(tmp_path, capsys):
    rc = main(["quicklook", "--output", str(tmp_path / "ql")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "detected elements" in out
    assert list((tmp_path / "ql").glob("*.emd"))


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_rejects_unknown_use_case():
    with pytest.raises(SystemExit):
        main(["campaign", "tomography"])
