"""Tests for the Fig. 1 feedback loop: drift alerts and summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_campaign
from repro.core.steering import (
    DriftVerdict,
    OperatorAlert,
    actionable_summary,
    detect_drift,
    scan_for_alerts,
)
from repro.flows import RunStatus


def test_stable_counts_ok():
    rng = np.random.default_rng(0)
    counts = 20 + rng.integers(-1, 2, size=200)
    v = detect_drift(counts)
    assert v.ok
    assert "stable" in v.detail


def test_count_collapse_detected():
    counts = [20] * 100 + [3] * 20
    v = detect_drift(counts)
    assert v.status == "count-collapse"
    assert v.first_bad_frame == 100
    assert "focus/beam" in v.detail


def test_monotonic_decline_detected():
    counts = np.linspace(30, 16, 200).round().astype(int)
    v = detect_drift(counts)
    assert v.status == "monotonic-decline"
    assert "drift" in v.detail


def test_instability_detected():
    rng = np.random.default_rng(0)
    counts = np.clip(rng.normal(14, 8, size=200).round(), 1, None).astype(int)
    v = detect_drift(counts)
    assert v.status in ("unstable", "count-collapse")


def test_zero_baseline():
    v = detect_drift([0] * 50)
    assert v.status == "count-collapse"


def test_short_series_is_inconclusive():
    assert detect_drift([5, 5, 5]).ok


def test_scan_for_alerts_collects_failures_and_drift():
    res = run_campaign("hyperspectral", duration_s=600, seed=1)
    alerts = scan_for_alerts(
        res.runs,
        count_series_by_subject={
            "good-movie": [12] * 100,
            "bad-movie": [12] * 50 + [2] * 50,
        },
    )
    # No failed flows in a clean campaign; one drift warning.
    assert len(alerts) == 1
    assert alerts[0].severity == "warning"
    assert alerts[0].source == "bad-movie"


def test_actionable_summary_transfer_bound():
    res = run_campaign("spatiotemporal", duration_s=1200, seed=2)
    summary = actionable_summary(res.runs, bytes_per_run=1200e6)
    assert summary["completed"] == len(res.completed_runs)
    assert summary["failed"] == 0
    assert summary["bottleneck"] == "data transfer"
    assert "experiments analyzed" in summary["headline"]
    assert summary["recommendation"]


def test_actionable_summary_overhead_recommendation():
    res = run_campaign("hyperspectral", duration_s=1200, seed=1)
    summary = actionable_summary(res.runs, bytes_per_run=91e6)
    # Hyperspectral flows run ~50% overhead → the backoff recommendation.
    assert "polling backoff" in summary["recommendation"]
    assert summary["median_overhead_pct"] > 40


def test_actionable_summary_no_runs():
    summary = actionable_summary([], bytes_per_run=1)
    assert summary["headline"] == "no flows completed"


def test_alert_rollup_in_summary():
    res = run_campaign("hyperspectral", duration_s=600, seed=1)
    alerts = [OperatorAlert("warning", "m1", "counts declining")]
    summary = actionable_summary(res.runs, bytes_per_run=91e6, alerts=alerts)
    assert summary["alerts"] == ["[warning] m1: counts declining"]
