"""R5xx resource-lifecycle rules: positive and negative fixtures per
rule, including the interprocedural refinements (keyword handoffs,
known non-cleaner callees, the all_of/any_of distinction, and the
acquisition-wait exemption)."""

from __future__ import annotations

import textwrap

from repro.lint import Analyzer, LintConfig


def lint(source: str, **config_kwargs):
    config_kwargs.setdefault("allow", {})
    analyzer = Analyzer(config=LintConfig(**config_kwargs))
    return analyzer.lint_source(textwrap.dedent(source), path="snippet.py")


def rule_ids(source: str, **config_kwargs):
    return [d.rule_id for d in lint(source, **config_kwargs)]


# -- R501: leaked scheduled events --------------------------------------------


def test_r501_fires_on_any_of_race_without_cancel():
    src = """
    def proc(env, gate):
        timer = env.timeout(30)
        result = yield env.any_of([timer, gate])
        return result
    """
    assert "R501" in rule_ids(src)


def test_r501_fires_on_discarded_timeout():
    src = """
    def proc(env):
        env.timeout(5)
        yield env.timeout(1)
    """
    assert "R501" in rule_ids(src)


def test_r501_fires_on_never_awaited_handle():
    src = """
    def proc(env):
        t = env.timeout(5)
        yield env.timeout(1)
    """
    assert "R501" in rule_ids(src)


def test_r501_clean_when_loser_is_cancelled():
    src = """
    def proc(env, gate):
        timer = env.timeout(30)
        result = yield env.any_of([timer, gate])
        env.cancel(timer)
        return result
    """
    assert "R501" not in rule_ids(src)


def test_r501_clean_on_processed_check():
    src = """
    def proc(env, gate):
        timer = env.timeout(30)
        yield env.any_of([timer, gate])
        if not timer.processed:
            log_stale(timer.eid)
    """
    assert "R501" not in rule_ids(src)


def test_r501_clean_on_all_of_members():
    # every member of an all_of is awaited to completion: there is no
    # losing timer to cancel
    src = """
    def proc(env, gate):
        period = env.timeout(30)
        yield env.all_of([period, gate])
    """
    assert "R501" not in rule_ids(src)


def test_r501_clean_on_direct_yield():
    src = """
    def proc(env):
        t = env.timeout(5)
        yield t
    """
    assert "R501" not in rule_ids(src)


def test_r501_fires_on_self_attr_timer_never_cancelled():
    src = """
    class Monitor:
        def arm(self):
            self._timer = self.env.timeout(60)

        def poll(self):
            return self.env.now
    """
    assert "R501" in rule_ids(src)


def test_r501_clean_when_another_method_cancels_the_attr():
    src = """
    class Monitor:
        def arm(self):
            self._timer = self.env.timeout(60)

        def stop(self):
            self.env.cancel(self._timer)
    """
    assert "R501" not in rule_ids(src)


# -- R502: span leaks ---------------------------------------------------------


def test_r502_fires_on_exception_path_past_finish():
    src = """
    def handle(tracer):
        span = tracer.start("work")
        do_work()
        span.finish()
    """
    assert "R502" in rule_ids(src)


def test_r502_fires_on_discarded_span_handle():
    src = """
    def handle(tracer):
        tracer.start("work")
        do_work()
    """
    assert "R502" in rule_ids(src)


def test_r502_clean_with_try_finally():
    src = """
    def handle(tracer):
        span = tracer.start("work")
        try:
            do_work()
            span.set("ok", True)
        finally:
            span.finish()
    """
    assert "R502" not in rule_ids(src)


def test_r502_clean_on_handoff_to_unknown_callee():
    # an unresolvable callee is assumed to take ownership
    src = """
    def handle(tracer):
        span = tracer.start("work")
        dispatch(span)
    """
    assert "R502" not in rule_ids(src)


def test_r502_fires_through_known_non_cleaner_callee():
    # interprocedural precision: the helper is resolvable and visibly
    # does NOT finish the span, so handing it over is not cleanup
    src = """
    def annotate(span):
        span.set("k", 1)

    def handle(tracer):
        span = tracer.start("work")
        annotate(span)
        do_work()
        span.finish()
    """
    assert "R502" in rule_ids(src)


def test_r502_clean_on_known_cleaner_callee():
    src = """
    def close_out(span):
        span.set("done", True)
        span.finish()

    def handle(tracer):
        span = tracer.start("work")
        close_out(span)
    """
    assert "R502" not in rule_ids(src)


def test_r502_clean_on_keyword_handoff_to_cleaner():
    # the keyword-argument form of the same handoff must also count
    src = """
    def close_out(extra=0, span=None):
        span.finish()

    def handle(tracer):
        span = tracer.start("work")
        close_out(span=span)
    """
    assert "R502" not in rule_ids(src)


def test_r502_clean_when_stored_on_self():
    src = """
    class Worker:
        def begin(self, tracer):
            span = tracer.start("work")
            self._span = span
    """
    assert "R502" not in rule_ids(src)


# -- R503: temp-file leaks ----------------------------------------------------


def test_r503_fires_on_cleanup_free_exception_path():
    src = """
    import os
    import tempfile

    def flush(data, final):
        fd, tmp = tempfile.mkstemp(dir=".")
        os.write(fd, data)
        os.close(fd)
        os.replace(tmp, final)
    """
    assert "R503" in rule_ids(src)


def test_r503_clean_with_unlink_in_handler():
    src = """
    import os
    import tempfile

    def flush(data, final):
        fd, tmp = tempfile.mkstemp(dir=".")
        try:
            os.write(fd, data)
            os.close(fd)
            os.replace(tmp, final)
        except OSError:
            os.unlink(tmp)
            raise
    """
    assert "R503" not in rule_ids(src)


def test_r503_clean_with_unlink_in_finally():
    src = """
    import os
    import tempfile

    def probe(final):
        fd, tmp = tempfile.mkstemp(dir=".")
        try:
            os.write(fd, b"x")
        finally:
            os.close(fd)
            os.unlink(tmp)
    """
    assert "R503" not in rule_ids(src)


# -- R504: requests held across sim-yields ------------------------------------


def test_r504_fires_on_hold_across_timeout_yield():
    src = """
    def proc(env, pool):
        req = pool.request()
        yield req
        yield env.timeout(5)
        req.release()
    """
    assert "R504" in rule_ids(src)


def test_r504_clean_when_only_yield_is_the_acquisition_wait():
    # `yield req` is the acquisition wait, not holding across a foreign
    # suspension point
    src = """
    def proc(env, pool):
        req = pool.request()
        yield req
        req.release()
    """
    assert "R504" not in rule_ids(src)


def test_r504_clean_with_try_finally_release():
    src = """
    def proc(env, pool):
        req = pool.request()
        try:
            yield req
            yield env.timeout(5)
        finally:
            req.release()
    """
    assert "R504" not in rule_ids(src)


def test_r504_clean_with_context_manager():
    src = """
    def proc(env, pool):
        with pool.request() as req:
            yield req
            yield env.timeout(5)
    """
    assert "R504" not in rule_ids(src)


def test_r504_clean_on_keyword_ownership_transfer():
    # handing the request to an unknown constructor (Node(request=req))
    # right after the acquisition wait transfers ownership — the
    # scheduler's fixed form
    src = """
    def provision(env, pool):
        req = pool.request()
        yield req
        return Node(request=req)
    """
    assert "R504" not in rule_ids(src)


def test_r504_fires_when_a_foreign_yield_precedes_the_transfer():
    # the PR-4 scheduler bug: boot delays between acquisition and the
    # ownership transfer — a kernel throw at the timeout leaks the slot
    src = """
    def provision(env, pool):
        req = pool.request()
        yield req
        yield env.timeout(1)
        return Node(request=req)
    """
    assert "R504" in rule_ids(src)


def test_r504_clean_when_guarded_by_except_baseexception():
    src = """
    def provision(env, pool):
        req = pool.request()
        try:
            yield req
            yield env.timeout(1)
        except BaseException:
            req.release()
            raise
        return Node(request=req)
    """
    assert "R504" not in rule_ids(src)


# -- noqa interplay -----------------------------------------------------------


def test_r5xx_noqa_suppresses_on_the_flagged_line():
    src = """
    def proc(env):
        env.schedule(event, priority=0)  # repro: noqa[R501]
    """
    assert "R501" not in rule_ids(src)
