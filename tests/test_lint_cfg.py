"""CFG construction: edge sets asserted against hand-checked fixtures.

Labels are deterministic — ``L{line}`` per statement, ``H{line}`` per
except handler, ``F{line}`` per finally body, ``W{line}`` per with
cleanup — so whole edge sets can be compared exactly.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.cfg import build_cfg


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func)


def test_straight_line_edges():
    cfg = cfg_of(
        """\
        def f():
            a()
            b()
        """
    )
    assert cfg.edge_set() == {
        ("entry", "L2", "next"),
        ("L2", "raise", "exc"),
        ("L2", "L3", "next"),
        ("L3", "raise", "exc"),
        ("L3", "exit", "next"),
    }


def test_try_except_else_finally_edges():
    cfg = cfg_of(
        """\
        def f():
            try:
                a()
            except ValueError:
                b()
            else:
                c()
            finally:
                d()
            e()
        """
    )
    assert cfg.edge_set() == {
        ("entry", "L3", "next"),
        # body: exception to the handler, success to else
        ("L3", "H4", "exc"),
        ("L3", "L7", "next"),
        # else body: exceptions route through finally, success too
        ("L7", "F2", "exc"),
        ("L7", "F2", "next"),
        # handler body
        ("H4", "L5", "next"),
        ("L5", "F2", "exc"),
        ("L5", "F2", "next"),
        # ValueError is not a catch-all: the no-match case propagates
        ("H4", "F2", "exc"),
        # finally body runs, then either re-raises or continues
        ("F2", "L9", "next"),
        ("L9", "raise", "exc"),
        ("L9", "L10", "next"),
        ("L10", "raise", "exc"),
        ("L10", "exit", "next"),
    }


def test_nested_with_cleanup_edges():
    cfg = cfg_of(
        """\
        def f():
            with a() as x:
                with b() as y:
                    c()
            d()
        """
    )
    assert cfg.edge_set() == {
        ("entry", "L2", "next"),
        ("L2", "raise", "exc"),
        ("L2", "L3", "next"),
        # inner header/body exceptions pass the enclosing cleanups
        ("L3", "W2", "exc"),
        ("L3", "L4", "next"),
        ("L4", "W3", "exc"),
        ("L4", "W3", "next"),
        # inner __exit__ re-raises through the outer __exit__
        ("W3", "W2", "exc"),
        ("W3", "W2", "next"),
        ("W2", "raise", "exc"),
        ("W2", "L5", "next"),
        ("L5", "raise", "exc"),
        ("L5", "exit", "next"),
    }


def test_while_else_and_break_edges():
    cfg = cfg_of(
        """\
        def f(p, r):
            while p:
                q()
                if r:
                    break
            else:
                s()
            t()
        """
    )
    assert cfg.edge_set() == {
        ("entry", "L2", "next"),
        ("L2", "L3", "next"),
        ("L3", "raise", "exc"),
        ("L3", "L4", "next"),
        ("L4", "L5", "next"),
        # falling through the if goes back to the loop head
        ("L4", "L2", "back"),
        # the else clause runs only when the condition goes false
        ("L2", "L7", "next"),
        ("L7", "raise", "exc"),
        # break skips the else; both meet at the statement after
        ("L5", "L8", "next"),
        ("L7", "L8", "next"),
        ("L8", "raise", "exc"),
        ("L8", "exit", "next"),
    }


def test_return_in_finally_swallows_the_exception():
    cfg = cfg_of(
        """\
        def f():
            try:
                a()
            finally:
                return 1
        """
    )
    assert cfg.edge_set() == {
        ("entry", "L3", "next"),
        ("L3", "F2", "exc"),
        ("L3", "F2", "next"),
        ("F2", "L5", "next"),
        ("L5", "exit", "next"),
    }
    # no surviving edge into the raise exit anywhere
    assert not cfg.raise_exit.pred


def test_return_routed_through_finally():
    cfg = cfg_of(
        """\
        def f():
            try:
                return g()
            finally:
                h()
        """
    )
    assert cfg.edge_set() == {
        ("entry", "L3", "next"),
        ("L3", "F2", "exc"),
        ("L3", "F2", "next"),
        ("F2", "L5", "next"),
        # the finally body both re-raises pending exceptions and
        # completes the pending return
        ("L5", "raise", "exc"),
        ("L5", "exit", "next"),
    }


def test_generator_yield_points_are_marked():
    cfg = cfg_of(
        """\
        def f(env):
            a()
            yield env.timeout(1)
            b()
        """
    )
    assert [b.label for b in cfg.yield_blocks] == ["L3"]
    # the kernel can throw into a suspended process: the yield block
    # must carry an exception edge
    yb = cfg.yield_blocks[0]
    assert ("raise" in {dst.label for dst, kind in yb.succ if kind == "exc"})


def test_async_def_awaits_are_yield_points():
    cfg = cfg_of(
        """\
        async def f(x):
            await x
            return 1
        """
    )
    assert [b.label for b in cfg.yield_blocks] == ["L2"]


def test_nested_defs_are_opaque():
    cfg = cfg_of(
        """\
        def f():
            def g():
                yield 1
            return g
        """
    )
    # the nested generator's yield is not a suspension point of f
    assert cfg.yield_blocks == []


def test_block_of_maps_statements_to_blocks():
    src = textwrap.dedent(
        """\
        def f():
            a()
            b()
        """
    )
    tree = ast.parse(src)
    func = tree.body[0]
    cfg = build_cfg(func)
    assert cfg.block_of(func.body[0]).label == "L2"
    assert cfg.block_of(func.body[1]).label == "L3"
