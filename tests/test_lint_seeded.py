"""The seeded fixture repo: one module per R5xx/N7xx rule
reconstructing a bug actually fixed in this repo's history (R5xx: PRs
3–4 lifecycle bugs; N7xx: the PR-7 vfs listing-order bug and its
ordering-hazard siblings), plus its fixed twin.  Each rule must catch
its reconstruction and accept the fix — the end-to-end proof the packs
would have caught the original regressions."""

from __future__ import annotations

import os

import pytest

from repro.lint import Analyzer, LintConfig

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint_seeded")


def lint_dir(which: str):
    analyzer = Analyzer(config=LintConfig(allow={}))
    return analyzer.lint_paths([os.path.join(FIXTURES, which)])


EXPECTED = {
    "R501": "fabric_timer.py",
    "R502": "span_probe.py",
    "R503": "checkpoint_store.py",
    "R504": "node_pool.py",
}

EXPECTED_N7 = {
    "N701": "vfs_listing.py",
    "N702": "sweep_merge.py",
    "N703": "stats_probe.py",
    "N704": "tie_key.py",
    "N705": "clock_launder.py",
}


@pytest.mark.parametrize(
    "rid,filename", sorted({**EXPECTED, **EXPECTED_N7}.items())
)
def test_each_rule_catches_its_bug_reconstruction(rid, filename):
    findings = lint_dir("buggy")
    hits = [d for d in findings if d.rule_id == rid]
    assert hits, f"{rid} missed its seeded reconstruction"
    assert all(os.path.basename(d.path) == filename for d in hits)


def test_buggy_tree_has_exactly_the_seeded_lifecycle_findings():
    findings = [d for d in lint_dir("buggy") if d.rule_id.startswith("R5")]
    assert sorted({d.rule_id for d in findings}) == sorted(EXPECTED)


def test_buggy_tree_has_exactly_the_seeded_ordering_findings():
    findings = [d for d in lint_dir("buggy") if d.rule_id.startswith("N7")]
    assert sorted({d.rule_id for d in findings}) == sorted(EXPECTED_N7)


def test_fixed_twins_are_clean():
    findings = lint_dir("fixed")
    assert [d for d in findings if d.rule_id.startswith("R5")] == []
    assert [d for d in findings if d.rule_id.startswith("N7")] == []
