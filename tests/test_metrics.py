"""Tests for IoU / AP / mAP metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Box, average_precision, iou, iou_matrix, map_range, match_greedy


def B(x0, y0, x1, y1, c=1.0):
    return Box(x0, y0, x1, y1, confidence=c)


def test_iou_identical_is_one():
    b = B(0, 0, 10, 10)
    assert iou(b, b) == 1.0


def test_iou_disjoint_is_zero():
    assert iou(B(0, 0, 1, 1), B(5, 5, 6, 6)) == 0.0


def test_iou_half_overlap():
    a = B(0, 0, 10, 10)
    b = B(5, 0, 15, 10)
    # intersection 50, union 150
    assert iou(a, b) == pytest.approx(1 / 3)


def test_degenerate_box_rejected():
    with pytest.raises(ValueError):
        Box(5, 0, 0, 5)


def test_iou_matrix_matches_scalar():
    dets = [B(0, 0, 4, 4), B(2, 2, 6, 6)]
    truths = [B(0, 0, 4, 4), B(10, 10, 12, 12)]
    m = iou_matrix(dets, truths)
    assert m.shape == (2, 2)
    for i, d in enumerate(dets):
        for j, t in enumerate(truths):
            assert m[i, j] == pytest.approx(iou(d, t))


def test_iou_matrix_empty():
    assert iou_matrix([], [B(0, 0, 1, 1)]).shape == (0, 1)
    assert iou_matrix([B(0, 0, 1, 1)], []).shape == (1, 0)


def test_match_greedy_prefers_confident_detections():
    truth = [B(0, 0, 10, 10)]
    dets = [B(1, 1, 11, 11, c=0.3), B(0, 0, 10, 10, c=0.9)]
    assignment = match_greedy(dets, truth, threshold=0.5)
    assert assignment == [-1, 0]  # high-confidence det claims the truth


def test_match_greedy_threshold():
    truth = [B(0, 0, 10, 10)]
    dets = [B(8, 8, 18, 18, c=1.0)]  # IoU ~ 0.026
    assert match_greedy(dets, truth, threshold=0.5) == [-1]


def test_perfect_detections_ap_one():
    frames = [([B(0, 0, 10, 10, c=0.9)], [B(0, 0, 10, 10)])]
    assert average_precision(frames, 0.5) == pytest.approx(1.0)
    assert map_range(frames) == pytest.approx(1.0)


def test_no_detections_ap_zero():
    frames = [([], [B(0, 0, 10, 10)])]
    assert average_precision(frames, 0.5) == 0.0


def test_no_truth_ap_zero():
    frames = [([B(0, 0, 10, 10, c=0.9)], [])]
    assert average_precision(frames, 0.5) == 0.0


def test_false_positives_lower_ap():
    clean = [([B(0, 0, 10, 10, c=0.9)], [B(0, 0, 10, 10)])]
    noisy = [
        (
            [B(0, 0, 10, 10, c=0.5), B(50, 50, 60, 60, c=0.9)],
            [B(0, 0, 10, 10)],
        )
    ]
    assert average_precision(noisy, 0.5) < average_precision(clean, 0.5)


def test_low_ranked_false_positives_hurt_less():
    fp_low = [
        ([B(0, 0, 10, 10, c=0.9), B(50, 50, 60, 60, c=0.1)], [B(0, 0, 10, 10)])
    ]
    fp_high = [
        ([B(0, 0, 10, 10, c=0.1), B(50, 50, 60, 60, c=0.9)], [B(0, 0, 10, 10)])
    ]
    assert average_precision(fp_low, 0.5) > average_precision(fp_high, 0.5)


def test_map_degrades_with_loose_boxes():
    """Boxes 20% oversized pass IoU 0.5 but fail 0.95 → mAP between 0 and 1."""
    frames = [([B(-1, -1, 11, 11, c=0.9)], [B(0, 0, 10, 10)])]
    m = map_range(frames)
    assert 0.3 < m < 1.0
    assert average_precision(frames, 0.5) == pytest.approx(1.0)
    assert average_precision(frames, 0.95) == 0.0


def test_map_range_empty_thresholds():
    with pytest.raises(ValueError):
        map_range([], thresholds=())


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 50), st.floats(0, 50), st.floats(1, 20), st.floats(1, 20)
        ),
        min_size=0,
        max_size=8,
    )
)
def test_iou_bounds_property(raw):
    boxes = [B(x, y, x + w, y + h) for x, y, w, h in raw]
    m = iou_matrix(boxes, boxes)
    assert (m >= 0).all() and (m <= 1 + 1e-9).all()
    if boxes:
        np.testing.assert_allclose(np.diag(m), 1.0)
        np.testing.assert_allclose(m, m.T)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 10), st.integers(0, 42))
def test_ap_perfect_detector_property(n, seed):
    """Property: detections identical to truth give AP 1.0 at any
    threshold."""
    rng = np.random.default_rng(seed)
    truths = [
        B(x, y, x + w, y + h)
        for x, y, w, h in zip(
            rng.uniform(0, 100, n),
            rng.uniform(0, 100, n),
            rng.uniform(2, 20, n),
            rng.uniform(2, 20, n),
        )
    ]
    dets = [B(t.x0, t.y0, t.x1, t.y1, c=0.9) for t in truths]
    assert map_range([(dets, truths)]) == pytest.approx(1.0)
