"""Integration tests: the full Transfer → Analyze → Publish flow and the
Sec. 3.3 campaigns over all substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ANALYZE_STATE,
    PUBLISH_STATE,
    TRANSFER_STATE,
    FlowTriggerApp,
    analyze_virtual_hyperspectral,
    fig4_samples,
    fig4_svg,
    hyperspectral_cost_model,
    picoprobe_flow,
    render_table1,
    run_campaign,
    table1_row,
    use_case_by_name,
)
from repro.flows import RunStatus
from repro.instrument import HYPERSPECTRAL_USE_CASE, FileCopier
from repro.portal import Portal
from repro.testbed import DEFAULT_CALIBRATION, build_testbed
from repro.transfer import FaultPlan
from repro.watcher import CheckpointStore, SimObserver


def make_app(tb, checkpoint=None):
    fid = tb.compute.register_function(
        analyze_virtual_hyperspectral,
        hyperspectral_cost_model(DEFAULT_CALIBRATION, tb.rngs),
    )
    definition = picoprobe_flow(tb.gladier, "picoprobe-hyperspectral")
    app = FlowTriggerApp(tb, definition, fid, checkpoint=checkpoint)
    observer = SimObserver(tb.user_fs, prefix="/transfer")
    app.attach(observer)
    return app


def emit_file(tb, index=0, at=None):
    uc = HYPERSPECTRAL_USE_CASE
    md = tb.instrument.stamp_metadata(
        uc.signal_type, uc.shape, uc.dtype, uc.sample, acquired_at=tb.env.now
    )
    return tb.user_fs.create(
        f"/transfer/hyper_{index:04d}.emd",
        size_bytes=uc.file_size_bytes,
        created_at=tb.env.now,
        metadata=md,
    )


def test_single_flow_end_to_end():
    tb = build_testbed(seed=0)
    app = make_app(tb)
    emit_file(tb)
    assert len(app.runs) == 1
    run = app.runs[0]
    tb.env.run(until=run.completed)
    assert run.status is RunStatus.SUCCEEDED
    # Transfer actually landed the file on Eagle.
    assert tb.eagle_fs.exists("/picoprobe/data/hyper_0000.emd")
    # Publication actually indexed the record.
    assert len(tb.portal_index) == 1
    hit = tb.portal_index.query(q="hyperspectral").hits[0]
    assert hit.content["experiment"]["signal_type"] == "hyperspectral"
    assert hit.content["data_location"] == "/picoprobe/data/hyper_0000.emd"
    # Steps recorded in order with sane timings.
    names = [s.name for s in run.steps]
    assert names == [TRANSFER_STATE, ANALYZE_STATE, PUBLISH_STATE]
    assert run.step(TRANSFER_STATE).active_seconds > 5
    assert run.step(ANALYZE_STATE).active_seconds > 1
    assert run.overhead_seconds > 0


def test_flow_record_is_portal_renderable():
    tb = build_testbed(seed=0)
    app = make_app(tb)
    emit_file(tb)
    tb.env.run(until=app.runs[0].completed)
    portal = Portal(tb.portal_index)
    html = portal.render_index()
    assert "Experiments (1)" in html
    subject = tb.portal_index.query().hits[0].subject
    page = portal.render_record(subject)
    assert "Beam energy (keV)" in page


def test_checkpoint_prevents_duplicate_flows():
    tb = build_testbed(seed=0)
    ckpt = CheckpointStore()
    app = make_app(tb, checkpoint=ckpt)
    f = emit_file(tb)
    # The "rebooted user machine" re-stages the same file content.
    tb.user_fs.create(
        f.path, f.size_bytes, created_at=1.0, checksum=f.checksum,
        metadata=f.metadata, overwrite=True,
    )
    assert len(app.runs) == 1
    assert app.skipped == 1


def test_new_content_at_same_path_triggers_again():
    tb = build_testbed(seed=0)
    app = make_app(tb)
    f = emit_file(tb)
    tb.user_fs.create(
        f.path, f.size_bytes, created_at=1.0, checksum="different-content",
        metadata=f.metadata, overwrite=True,
    )
    assert len(app.runs) == 2


def test_cold_start_then_warm_reuse_across_flows():
    tb = build_testbed(seed=0)
    app = make_app(tb)

    def driver(env):
        emit_file(tb, 0)
        yield app.runs[0].completed
        emit_file(tb, 1)
        yield app.runs[1].completed

    tb.env.process(driver(tb.env))
    tb.env.run()
    r0, r1 = app.runs
    assert r0.step(ANALYZE_STATE).result["cold_start"] is True
    assert r1.step(ANALYZE_STATE).result["cold_start"] is False
    # Warm analysis is dramatically faster.
    assert (
        r1.step(ANALYZE_STATE).active_seconds
        < r0.step(ANALYZE_STATE).active_seconds / 3
    )


def test_campaign_short_horizon_counts():
    res = run_campaign("hyperspectral", duration_s=600, seed=3)
    assert len(res.completed_runs) >= 5
    row = res.table1()
    assert row.total_runs == len(res.completed_runs)
    assert row.total_data_gb == pytest.approx(91e6 * row.total_runs / 1e9)
    assert row.min_runtime_s <= row.mean_runtime_s <= row.max_runtime_s
    assert 0 < row.median_overhead_pct < 100


def test_campaign_table1_shape_matches_paper():
    """The headline Table 1 relationships must hold."""
    hyper = run_campaign("hyperspectral", duration_s=1800, seed=1).table1()
    spatio = run_campaign("spatiotemporal", duration_s=1800, seed=2).table1()
    # Hyperspectral completes ~4-6x more runs…
    assert 3.0 < hyper.total_runs / spatio.total_runs < 7.0
    # …but moves less total data.
    assert spatio.total_data_gb > hyper.total_data_gb
    # Spatiotemporal flows are ~4-5x longer.
    assert 3.5 < spatio.mean_runtime_s / hyper.mean_runtime_s < 6.0
    # Orchestration overhead dominates the short flow, not the long one.
    assert hyper.median_overhead_pct > 35
    assert spatio.median_overhead_pct < 30
    assert hyper.median_overhead_pct > spatio.median_overhead_pct


def test_campaign_periodic_mode_overlaps_flows():
    res = run_campaign("hyperspectral", duration_s=600, seed=0, copier_mode="periodic")
    # Strict 30 s cadence: 20 files emitted in 600 s.
    assert len(res.copier.emitted) == 20
    assert len(res.runs) == 20


def test_campaign_with_faults_still_completes():
    res = run_campaign(
        "hyperspectral",
        duration_s=900,
        seed=4,
        fault_plan=FaultPlan(transient_prob=0.3, max_attempts=5),
    )
    done = res.completed_runs
    assert len(done) >= 3
    assert all(r.status is RunStatus.SUCCEEDED for r in done)
    # At least one transfer needed a retry (visible in attempts).
    attempts = [r.step(TRANSFER_STATE).result.get("attempts", 1) for r in done]
    assert max(attempts) > 1


def test_fig4_samples_and_svg():
    res = run_campaign("hyperspectral", duration_s=900, seed=1)
    samples = fig4_samples(res.runs)
    n = len(res.completed_runs)
    for key in ("Transfer", "Analysis", "Publication", "Active", "Overhead"):
        assert len(samples[key]) == n
    # Transfer dominates active time (the paper's bottleneck finding).
    assert np.median(samples["Transfer"]) > np.median(samples["Analysis"])
    assert np.median(samples["Transfer"]) > np.median(samples["Publication"])
    svg = fig4_svg(res.runs, "Hyperspectral flow")
    assert svg.startswith("<svg") and "Overhead" in svg


def test_render_table1_text():
    res = run_campaign("hyperspectral", duration_s=600, seed=1)
    text = render_table1([res.table1()])
    assert "Total flow runs" in text
    assert "Hyperspectral" in text
    with pytest.raises(ValueError):
        render_table1([])


def test_use_case_lookup():
    assert use_case_by_name("hyperspectral").period_s == 30
    with pytest.raises(ValueError):
        use_case_by_name("tomography")


def test_table1_requires_completed_runs():
    with pytest.raises(ValueError):
        table1_row("x", 30, 91e6, [])
