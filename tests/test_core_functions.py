"""Tests for the flow analysis functions and their cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.functions import (
    analyze_hyperspectral_file,
    analyze_spatiotemporal_file,
    analyze_virtual_hyperspectral,
    analyze_virtual_spatiotemporal,
    file_descriptor,
    hyperspectral_cost_model,
    spatiotemporal_cost_model,
)
from repro.emd import write_emd
from repro.errors import ComputeError
from repro.instrument import (
    HYPERSPECTRAL_USE_CASE,
    SPATIOTEMPORAL_USE_CASE,
    MovieSpec,
    PicoProbe,
)
from repro.rng import RngRegistry
from repro.search import validate_datacite
from repro.storage import VirtualFS
from repro.testbed import DEFAULT_CALIBRATION
from repro.analysis import read_video, video_info


def make_vfile(uc=HYPERSPECTRAL_USE_CASE, size=None):
    probe = PicoProbe(RngRegistry(0), operator="tester")
    md = probe.stamp_metadata(uc.signal_type, uc.shape, uc.dtype, uc.sample, 5.0)
    fs = VirtualFS("u")
    return fs.create(
        "/transfer/x.emd",
        size if size is not None else uc.file_size_bytes,
        created_at=5.0,
        metadata=md,
    )


def test_file_descriptor_roundtrips_metadata():
    vf = make_vfile()
    d = file_descriptor(vf, "/eagle/x.emd")
    assert d["dest_path"] == "/eagle/x.emd"
    assert d["size_bytes"] == 91e6
    assert d["signal_type"] == "hyperspectral"
    assert "metadata_json" in d


def test_file_descriptor_requires_metadata():
    fs = VirtualFS("u")
    bare = fs.create("/transfer/bare.emd", 10, created_at=0)
    with pytest.raises(ComputeError, match="metadata"):
        file_descriptor(bare, "/d")


def test_virtual_hyperspectral_produces_valid_record():
    vf = make_vfile()
    doc = analyze_virtual_hyperspectral(file_descriptor(vf, "/eagle/x.emd"))
    validate_datacite(doc)
    assert doc["data_location"] == "/eagle/x.emd"
    assert doc["experiment"]["signal_type"] == "hyperspectral"
    assert "intensity_image" in doc["derived_products"]


def test_virtual_spatiotemporal_produces_valid_record():
    vf = make_vfile(SPATIOTEMPORAL_USE_CASE)
    doc = analyze_virtual_spatiotemporal(file_descriptor(vf, "/eagle/m.emd"))
    validate_datacite(doc)
    assert "annotated_video" in doc["derived_products"]
    assert doc["experiment"]["shape"] == [600, 500, 500]


def test_hyperspectral_cost_scales_with_size():
    cal = DEFAULT_CALIBRATION
    model = hyperspectral_cost_model(cal, RngRegistry(0))
    small = make_vfile(size=10e6)
    big = make_vfile(size=500e6)
    c_small = np.median(
        [model((), {"file": file_descriptor(small, "/d")}) for _ in range(50)]
    )
    c_big = np.median(
        [model((), {"file": file_descriptor(big, "/d")}) for _ in range(50)]
    )
    assert c_big > c_small * 3
    assert c_small >= cal.hyperspectral_analysis_floor_s * 0.5


def test_spatiotemporal_cost_includes_per_frame_inference():
    cal = DEFAULT_CALIBRATION
    model = spatiotemporal_cost_model(cal, RngRegistry(0))
    vf = make_vfile(SPATIOTEMPORAL_USE_CASE)
    cost = np.median([model((), {"file": file_descriptor(vf, "/d")}) for _ in range(50)])
    # ≈ 30 s/GB * 1.2 GB + 0.013 * 600 frames ≈ 44 s.
    assert 30 < cost < 60


def test_real_hyperspectral_analysis_outputs(tmp_path):
    probe = PicoProbe(RngRegistry(0))
    sig, _ = probe.acquire_hyperspectral(shape=(32, 32), n_channels=256)
    path = tmp_path / "h.emd"
    write_emd(path, sig)
    doc = analyze_hyperspectral_file(path, tmp_path / "out")
    validate_datacite(doc)
    assert (tmp_path / "out" / "h_intensity.svg").exists()
    assert (tmp_path / "out" / "h_spectrum.svg").exists()
    assert "C" in doc["detected_elements"]
    assert doc["plots"]["intensity image"].startswith("<svg")


def test_real_hyperspectral_rejects_movie(tmp_path):
    probe = PicoProbe(RngRegistry(0))
    sig, _ = probe.acquire_spatiotemporal(
        MovieSpec(n_frames=2, shape=(64, 64), n_particles=1, radius_range=(4, 6))
    )
    path = tmp_path / "m.emd"
    write_emd(path, sig)
    with pytest.raises(ComputeError, match="hyperspectral"):
        analyze_hyperspectral_file(path, tmp_path / "out")


def test_real_spatiotemporal_analysis_outputs(tmp_path):
    probe = PicoProbe(RngRegistry(0))
    spec = MovieSpec(n_frames=6, shape=(96, 96), n_particles=3, radius_range=(5, 8))
    sig, truth = probe.acquire_spatiotemporal(spec)
    path = tmp_path / "m.emd"
    write_emd(path, sig)
    doc = analyze_spatiotemporal_file(path, tmp_path / "out")
    validate_datacite(doc)
    video = doc["annotated_video"]
    n, fps = video_info(video)
    assert n == 6
    assert len(doc["particle_counts"]) == 6
    assert doc["mean_particle_count"] > 0
    # Annotated frames are valid PNGs.
    assert all(p.startswith(b"\x89PNG") for p in read_video(video))


def test_real_spatiotemporal_rejects_cube(tmp_path):
    probe = PicoProbe(RngRegistry(0))
    sig, _ = probe.acquire_hyperspectral(shape=(32, 32), n_channels=16)
    path = tmp_path / "h.emd"
    write_emd(path, sig)
    with pytest.raises(ComputeError, match="spatiotemporal"):
        analyze_spatiotemporal_file(path, tmp_path / "out")
