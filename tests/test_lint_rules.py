"""Per-rule fixtures: every rule has at least one positive snippet (the
rule fires) and one negative (clean, or noqa-suppressed)."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import Analyzer, LintConfig


def lint(source: str, **config_kwargs):
    """Lint a snippet with no path allowances (so every rule can fire)."""
    config_kwargs.setdefault("allow", {})
    analyzer = Analyzer(config=LintConfig(**config_kwargs))
    return analyzer.lint_source(textwrap.dedent(source), path="snippet.py")


def rule_ids(source: str, **config_kwargs):
    return [d.rule_id for d in lint(source, **config_kwargs)]


# -- D101: wall-clock calls ---------------------------------------------------


def test_d101_fires_on_time_time():
    assert "D101" in rule_ids("import time\nt = time.time()\n")


def test_d101_sees_through_aliases():
    assert "D101" in rule_ids("import time as _t\nt = _t.monotonic()\n")
    assert "D101" in rule_ids("from time import perf_counter\nt = perf_counter()\n")
    assert "D101" in rule_ids(
        "from datetime import datetime\nd = datetime.now()\n"
    )


def test_d101_clean_on_env_now_and_rebound_time():
    assert rule_ids("def f(env):\n    return env.now\n") == []
    # a local rebinding shadows the import: no longer the stdlib clock
    assert rule_ids("import time\ntime = FakeClock()\nt = time.time()\n") == []


# -- D102: time.sleep ---------------------------------------------------------


def test_d102_fires_on_sleep():
    assert "D102" in rule_ids("import time\ntime.sleep(0.1)\n")
    assert "D102" in rule_ids("from time import sleep\nsleep(1)\n")


def test_d102_clean_on_injected_sleep():
    assert (
        rule_ids("def run(sleep):\n    sleep(0.1)\n") == []
    )  # injected callable, not the stdlib


# -- D103: global random ------------------------------------------------------


def test_d103_fires_on_global_random():
    assert "D103" in rule_ids("import random\nx = random.random()\n")
    assert "D103" in rule_ids("import random\nrandom.seed(1)\n")


def test_d103_clean_on_rng_streams():
    src = """
    from repro.rng import RngRegistry
    rng = RngRegistry(1).stream("jitter")
    x = rng.normal()
    """
    assert rule_ids(src) == []


# -- D104: legacy numpy.random ------------------------------------------------


def test_d104_fires_on_legacy_np_random():
    assert "D104" in rule_ids("import numpy as np\nx = np.random.rand(4)\n")
    assert "D104" in rule_ids("import numpy\nnumpy.random.seed(0)\n")


def test_d104_clean_on_generator_api():
    assert rule_ids("import numpy as np\nr = np.random.default_rng(3)\n") == []
    assert rule_ids("import numpy as np\ns = np.random.SeedSequence(7)\n") == []


# -- D105: env-var reads ------------------------------------------------------


def test_d105_fires_on_environ_reads():
    ids = rule_ids("import os\na = os.environ['X']\nb = os.getenv('Y')\n")
    assert ids.count("D105") == 2


def test_d105_clean_on_explicit_config():
    assert rule_ids("def f(cfg):\n    return cfg['X']\n") == []


# -- D106: unordered iteration ------------------------------------------------


def test_d106_fires_on_set_iteration_and_popitem():
    assert "D106" in rule_ids("for x in {1, 2, 3}:\n    print(x)\n")
    assert "D106" in rule_ids("xs = [y for y in set([1, 2])]\n")
    assert "D106" in rule_ids("d = {'a': 1}\nk, v = d.popitem()\n")


def test_d106_clean_when_sorted():
    assert rule_ids("for x in sorted({1, 2, 3}):\n    print(x)\n") == []
    assert rule_ids("for x in sorted(set([1, 2])):\n    print(x)\n") == []


# -- D107: id()-based ordering ------------------------------------------------


def test_d107_fires_on_id_ordering():
    assert "D107" in rule_ids("xs = sorted([1, 2], key=id)\n")
    assert "D107" in rule_ids("if id(a) < id(b):\n    pass\n")


def test_d107_clean_on_identity_equality():
    # id() equality is a plain identity test, stable within one run
    assert rule_ids("same = id(a) == id(b)\n") == []
    assert rule_ids("xs = sorted([2, 1])\n") == []


# -- S201: yielding non-events ------------------------------------------------


def test_s201_fires_on_literal_yields_in_process_generators():
    assert "S201" in rule_ids("def proc(env):\n    yield 5\n")
    assert "S201" in rule_ids("def proc(env):\n    yield\n")


def test_s201_ignores_plain_iterators_and_event_yields():
    # a generator that never touches an env is not a DES process
    assert rule_ids("def gen():\n    yield 5\n") == []
    assert rule_ids("def proc(env):\n    yield env.timeout(1.0)\n") == []


# -- S202: unreleased resource requests --------------------------------------


def test_s202_fires_when_request_never_released():
    src = """
    def proc(env, pool):
        req = pool.request()
        yield req
        yield env.timeout(10)
    """
    assert "S202" in rule_ids(src)


def test_s202_fires_when_request_discarded():
    src = """
    def proc(env, pool):
        yield pool.request()
    """
    assert "S202" in rule_ids(src)


def test_s202_accepts_with_tryfinally_and_ownership_transfer():
    clean_with = """
    def proc(env, pool):
        with pool.request() as req:
            yield req
            yield env.timeout(10)
    """
    clean_finally = """
    def proc(env, pool):
        req = pool.request()
        try:
            yield req
            yield env.timeout(10)
        finally:
            req.release()
    """
    clean_transfer = """
    def provision(env, pool):
        req = pool.request()
        yield req
        return Node(request=req)
    """
    assert rule_ids(clean_with) == []
    assert rule_ids(clean_finally) == []
    assert rule_ids(clean_transfer) == []


# -- S203: swallowed errors ---------------------------------------------------


def test_s203_fires_on_bare_except_anywhere():
    assert "S203" in rule_ids("try:\n    f()\nexcept:\n    pass\n")


def test_s203_fires_on_pass_only_broad_handler_in_process():
    src = """
    def proc(env):
        try:
            yield env.timeout(1)
        except Exception:
            pass
    """
    assert "S203" in rule_ids(src)


def test_s203_accepts_handlers_that_record_or_reraise():
    src = """
    def proc(env, record):
        try:
            yield env.timeout(1)
        except Exception as exc:
            record["error"] = str(exc)
    """
    assert rule_ids(src) == []


# -- F301: dangling transitions ----------------------------------------------


def test_f301_fires_on_dangling_next_and_bad_start():
    dangling = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(FlowState(name="A", provider="transfer", next="Missing"),),
    )
    """
    bad_start = """
    d = FlowDefinition(
        title="t", start_at="Nope",
        states=(FlowState(name="A", provider="transfer"),),
    )
    """
    assert "F301" in rule_ids(dangling)
    assert "F301" in rule_ids(bad_start)


def test_f301_clean_on_wellformed_chain():
    src = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(
            FlowState(name="A", provider="transfer", next="B"),
            FlowState(name="B", provider="compute"),
        ),
    )
    """
    assert rule_ids(src) == []


# -- F302: unreachable states -------------------------------------------------


def test_f302_fires_on_unreachable_state():
    src = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(
            FlowState(name="A", provider="transfer"),
            FlowState(name="Orphan", provider="compute"),
        ),
    )
    """
    assert "F302" in rule_ids(src)


def test_f302_skips_dynamic_definitions():
    src = """
    states = build_states()
    d = FlowDefinition(title="t", start_at="A", states=states)
    """
    assert rule_ids(src) == []


# -- F303: forward $.states references ---------------------------------------


def test_f303_fires_on_forward_and_unknown_references():
    forward = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(
            FlowState(name="A", provider="transfer",
                      parameters={"x": "$.states.B.out"}, next="B"),
            FlowState(name="B", provider="compute"),
        ),
    )
    """
    unknown = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(
            FlowState(name="A", provider="transfer", next="B"),
            FlowState(name="B", provider="compute",
                      parameters={"x": "$.states.Ghost.out"}),
        ),
    )
    """
    assert "F303" in rule_ids(forward)
    assert "F303" in rule_ids(unknown)


def test_f303_clean_on_backward_reference():
    src = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(
            FlowState(name="A", provider="transfer", next="B"),
            FlowState(name="B", provider="compute",
                      parameters={"endpoint": "$.input.ep",
                                  "function_id": "$.states.A.task_id"}),
        ),
    )
    """
    assert rule_ids(src) == []


# -- F304: unknown providers --------------------------------------------------


def test_f304_fires_on_unknown_provider():
    src = 's = FlowState(name="A", provider="never_registered")\n'
    assert "F304" in rule_ids(src)


def test_f304_accepts_registry_and_dynamic_providers():
    assert rule_ids('s = FlowState(name="A", provider="transfer")\n') == []
    assert rule_ids('s = FlowState(name="A", provider="local_compress")\n') == []
    # dynamic provider names are out of static reach: skipped, not flagged
    assert rule_ids('s = FlowState(name="A", provider=make_provider())\n') == []


# -- suppression paths shared by all rules ------------------------------------


@pytest.mark.parametrize(
    "snippet, rid",
    [
        ("import time\nt = time.time()  # repro: noqa[D101] calibration\n", "D101"),
        ("import time\ntime.sleep(1)  # repro: noqa\n", "D102"),
        ("import random\nrandom.random()  # repro: noqa[D103] demo only\n", "D103"),
    ],
)
def test_noqa_suppresses_each_pack(snippet, rid):
    assert rid not in rule_ids(snippet)


def test_noqa_with_wrong_id_does_not_suppress():
    src = "import time\nt = time.time()  # repro: noqa[D999]\n"
    assert "D101" in rule_ids(src)


# -- F405: providers swallowing fault signals ---------------------------------


def test_f405_fires_on_silent_pass_in_provider():
    src = """
    class MyActionProvider:
        def run(self, body):
            try:
                self.service.submit(body)
            except ServiceUnavailable:
                pass
    """
    assert "F405" in rule_ids(src)


def test_f405_fires_on_schema_declared_provider_and_tuple_catch():
    src = """
    class Uploader:
        input_schema = {"src": "str"}

        def run(self, body):
            try:
                self.push(body)
            except (FlowError, ValueError):
                ok = False
    """
    assert "F405" in rule_ids(src)


def test_f405_fires_on_run_status_protocol_class():
    src = """
    class Mover:
        def run(self, body):
            try:
                self.go(body)
            except ActionTimeout:
                pass

        def status(self, action_id):
            return None
    """
    assert "F405" in rule_ids(src)


def test_f405_clean_when_provider_reraises():
    src = """
    class MyActionProvider:
        def run(self, body):
            try:
                self.service.submit(body)
            except ServiceUnavailable:
                raise
    """
    assert rule_ids(src) == []


def test_f405_clean_when_provider_records_the_fault():
    src = """
    class MyActionProvider:
        def run(self, body):
            try:
                self.service.submit(body)
            except ServiceUnavailable as exc:
                self.records[body["id"]].error = str(exc)
    """
    assert rule_ids(src) == []


def test_f405_clean_outside_provider_classes():
    # the executor and the chaos controller legitimately absorb these
    src = """
    class FlowsService:
        def drive(self, provider, body):
            try:
                provider.run(body)
            except ServiceUnavailable:
                pass
    """
    assert rule_ids(src) == []
    src = """
    def helper(service, body):
        try:
            service.submit(body)
        except FlowError:
            pass
    """
    assert rule_ids(src) == []


def test_f405_ignores_unrelated_exceptions_in_providers():
    src = """
    class MyActionProvider:
        def run(self, body):
            try:
                self.service.submit(body)
            except KeyError:
                pass
    """
    assert rule_ids(src) == []
