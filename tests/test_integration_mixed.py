"""Integration: both use cases sharing ONE testbed concurrently.

The paper runs its campaigns independently; this test goes further and
drives hyperspectral and spatiotemporal flows through the *same*
network, scheduler, flows service, and search index at the same time —
the realistic multi-user regime — and checks that nothing interferes:
flows of both kinds complete, share warm nodes, contend for the same
switch, and land in one portal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FlowTriggerApp,
    analyze_virtual_hyperspectral,
    analyze_virtual_spatiotemporal,
    hyperspectral_cost_model,
    picoprobe_flow,
    spatiotemporal_cost_model,
)
from repro.flows import RunStatus
from repro.instrument import (
    HYPERSPECTRAL_USE_CASE,
    SPATIOTEMPORAL_USE_CASE,
    FileCopier,
)
from repro.portal import Portal
from repro.search import FieldFilter
from repro.testbed import DEFAULT_CALIBRATION, build_testbed
from repro.watcher import SimObserver


@pytest.fixture(scope="module")
def mixed_world():
    tb = build_testbed(seed=5)
    cal = DEFAULT_CALIBRATION

    apps = {}
    copiers = {}
    for uc, fn, cost in (
        (
            HYPERSPECTRAL_USE_CASE,
            analyze_virtual_hyperspectral,
            hyperspectral_cost_model(cal, tb.rngs),
        ),
        (
            SPATIOTEMPORAL_USE_CASE,
            analyze_virtual_spatiotemporal,
            spatiotemporal_cost_model(cal, tb.rngs),
        ),
    ):
        fid = tb.compute.register_function(fn, cost, name=f"{uc.name}-analysis")
        definition = picoprobe_flow(tb.gladier, f"picoprobe-{uc.name}")
        app = FlowTriggerApp(tb, definition, fid, dest_dir=f"/picoprobe/{uc.name}")
        observer = SimObserver(tb.user_fs, prefix=f"/transfer/{uc.name}")
        app.attach(observer)
        copier = FileCopier(
            tb.env,
            tb.user_fs,
            uc,
            instrument=tb.instrument,
            mode="gated",
            directory=f"/transfer/{uc.name}",
        )
        app.on_complete.append(
            lambda run, c=copier: c.notify_flow_complete()
        )
        tb.env.process(copier.run(until=1800.0))
        apps[uc.name] = app
        copiers[uc.name] = copier

    tb.env.run(until=1800.0)
    return tb, apps, copiers


def test_both_use_cases_complete(mixed_world):
    tb, apps, _ = mixed_world
    h = apps["hyperspectral"].completed_runs
    s = apps["spatiotemporal"].completed_runs
    assert len(h) >= 10
    assert len(s) >= 3
    assert all(r.status is RunStatus.SUCCEEDED for r in h + s)


def test_shared_switch_contention_visible(mixed_world):
    """Concurrent movie transfers slow hyperspectral transfers relative
    to the isolated campaign."""
    tb, apps, _ = mixed_world
    from repro.core import run_campaign

    isolated = run_campaign("hyperspectral", duration_s=1800, seed=5)

    def med_transfer(runs):
        return float(
            np.median([r.step("TransferData").active_seconds for r in runs])
        )

    mixed_t = med_transfer(apps["hyperspectral"].completed_runs)
    iso_t = med_transfer(isolated.completed_runs)
    assert mixed_t > iso_t  # sharing the switch costs something


def test_both_kinds_share_warm_nodes(mixed_world):
    tb, apps, _ = mixed_world
    all_runs = (
        apps["hyperspectral"].completed_runs
        + apps["spatiotemporal"].completed_runs
    )
    cold = [r for r in all_runs if r.step("AnalyzeData").result.get("cold_start")]
    # One shared endpoint: far fewer cold starts than flows.
    assert 1 <= len(cold) <= 4
    nodes = {r.step("AnalyzeData").result["node_id"] for r in all_runs}
    assert len(nodes) <= tb.scheduler.pool.capacity


def test_single_portal_holds_both_signal_types(mixed_world):
    tb, apps, _ = mixed_world
    idx = tb.portal_index
    res = idx.query(facet_fields=["experiment.signal_type"], limit=1000)
    facets = res.facets["experiment.signal_type"]
    assert facets.get("hyperspectral", 0) >= 10
    assert facets.get("spatiotemporal", 0) >= 3
    # Filtered queries separate them cleanly.
    only_s = idx.query(
        filters=[FieldFilter("experiment.signal_type", "eq", "spatiotemporal")],
        limit=1000,
    )
    assert only_s.total_matched == facets["spatiotemporal"]


def test_portal_builds_from_mixed_index(mixed_world, tmp_path):
    tb, apps, _ = mixed_world
    portal = Portal(tb.portal_index)
    written = portal.build(tmp_path)
    n_records = len(tb.portal_index.query(limit=10_000).hits)
    assert len(written) == n_records + 1  # index + one page per record
