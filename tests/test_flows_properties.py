"""Property-based tests for the flow executor's timing invariants."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import AuthClient
from repro.auth.identity import FLOWS_SCOPE
from repro.flows import (
    ActionState,
    ActionStatus,
    ExponentialBackoff,
    FlowDefinition,
    FlowState,
    FlowsService,
    RunStatus,
)
from repro.rng import RngRegistry
from repro.sim import Environment


class TimedProvider:
    """Completes action k after its assigned duration."""

    name = "timed"

    def __init__(self, env, durations):
        self.env = env
        self.durations = list(durations)
        self._ids = itertools.count(0)
        self._start = {}

    def run(self, body):
        k = next(self._ids)
        self._start[k] = (self.env.now, self.durations[k % len(self.durations)])
        return str(k)

    def status(self, action_id):
        start, duration = self._start[int(action_id)]
        if self.env.now - start < duration:
            return ActionStatus(state=ActionState.ACTIVE)
        return ActionStatus(
            state=ActionState.SUCCEEDED, result={}, active_seconds=duration
        )


def run_flow_with(durations, backoff=None, transition=0.0, poll=0.0):
    env = Environment()
    auth = AuthClient()
    alice = auth.register_identity("a")
    token = auth.issue_token(alice, [FLOWS_SCOPE], now=0.0)
    svc = FlowsService(
        env,
        auth,
        RngRegistry(0),
        transition_latency_s=transition,
        transition_sigma=0.0,
        poll_latency_s=poll,
        backoff=backoff or ExponentialBackoff(),
    )
    svc.register_provider(TimedProvider(env, durations))
    states = tuple(
        FlowState(
            name=f"S{i}",
            provider="timed",
            next=(f"S{i+1}" if i < len(durations) - 1 else None),
        )
        for i in range(len(durations))
    )
    d = FlowDefinition(title="t", start_at="S0", states=states)
    run = svc.run_flow(token, svc.deploy(d), {})
    env.run(until=run.completed)
    return run


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=500), min_size=1, max_size=5),
)
def test_timing_invariants(durations):
    """For any step durations: runtime ≥ active; overhead ≥ 0; each
    step's detection never precedes its completion; backoff detection lag
    is bounded by the last poll interval."""
    run = run_flow_with(durations)
    assert run.status is RunStatus.SUCCEEDED
    assert run.runtime_seconds >= run.active_seconds - 1e-9
    assert run.overhead_seconds >= 0
    assert run.active_seconds == pytest.approx(sum(durations))
    for step, d in zip(run.steps, durations):
        observed = step.observed_seconds
        assert observed >= d - 1e-9
        # Detection happens at the first poll >= completion; with 1,2,4…
        # polling the lag is less than the total observed time itself and
        # bounded by the next poll gap.
        assert step.polls >= 1
        assert step.overhead_seconds <= observed


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.1, max_value=300))
def test_detection_at_poll_boundaries(duration):
    """With zero latencies the terminal poll time is exactly the first
    cumulative backoff point at or after the action duration."""
    run = run_flow_with([duration])
    # cumulative poll times: 1, 3, 7, 15, ...
    t, cum = 1.0, 1.0
    points = []
    for _ in range(40):
        points.append(cum)
        t = min(t * 2, 600.0)
        cum += t
    expected = next(p for p in points if p >= duration - 1e-9)
    assert run.steps[0].observed_seconds == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.floats(min_value=0.5, max_value=60), min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=5.0),
)
def test_transition_latency_additivity(durations, transition):
    """Total runtime grows by exactly (n_states + 1) * transition when a
    deterministic transition latency is added."""
    base = run_flow_with(durations, transition=0.0)
    with_t = run_flow_with(durations, transition=transition)
    expected_extra = (len(durations) + 1) * transition
    assert with_t.runtime_seconds - base.runtime_seconds == pytest.approx(
        expected_extra, abs=1e-6
    )
