"""Tests for the transfer service (endpoints, tasks, faults, checksums)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.auth import AccessPolicy, AuthClient
from repro.auth.identity import TRANSFER_SCOPE
from repro.errors import EndpointError, PermissionDenied, TransferError
from repro.net import NetworkFabric, Topology
from repro.rng import RngRegistry
from repro.sim import Environment
from repro.storage import VirtualFS
from repro.transfer import (
    FaultPlan,
    TaskStatus,
    TransferEndpoint,
    TransferService,
)
from repro.units import MB, Gbps


@pytest.fixture
def world():
    """A minimal two-endpoint world with an authenticated user."""
    env = Environment()
    topo = Topology()
    topo.add_node("user-machine")
    topo.add_node("eagle-dtn")
    topo.add_link("user-machine", "eagle-dtn", Gbps(1), latency_s=0.001)
    fabric = NetworkFabric(env, topo)
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [TRANSFER_SCOPE], now=0.0)

    src_fs = VirtualFS("picoprobe")
    dst_fs = VirtualFS("eagle")
    src_ep = TransferEndpoint(
        name="picoprobe-user",
        host="user-machine",
        vfs=src_fs,
        policy=AccessPolicy().allow_write(alice),
    )
    dst_ep = TransferEndpoint(
        name="alcf-eagle",
        host="eagle-dtn",
        vfs=dst_fs,
        policy=AccessPolicy().allow_write(alice),
    )
    service = TransferService(env, fabric, auth, RngRegistry(1), latency_sigma=0.0)
    service.register_endpoint(src_ep)
    service.register_endpoint(dst_ep)
    return env, service, token, src_fs, dst_fs, auth, alice


def test_successful_transfer_moves_file(world):
    env, service, token, src_fs, dst_fs, *_ = world
    f = src_fs.create("/transfer/a.emd", MB(125), created_at=0)
    tid = service.submit(token, "picoprobe-user", "/transfer/a.emd", "alcf-eagle", "/data/a.emd")
    env.run(until=service.wait(tid))
    task = service.task_record(tid)
    assert task.status is TaskStatus.SUCCEEDED
    assert dst_fs.exists("/data/a.emd")
    assert dst_fs.stat("/data/a.emd").checksum == f.checksum
    # ~1 s at 1 Gbps + API latency + checksum time
    assert 1.0 < env.now < 2.5


def test_task_snapshot_pollable(world):
    env, service, token, src_fs, *_ = world
    src_fs.create("/transfer/a.emd", MB(10), created_at=0)
    tid = service.submit(token, "picoprobe-user", "/transfer/a.emd", "alcf-eagle", "/d/a.emd")
    snap = service.get_task(token, tid)
    assert snap["status"] in ("QUEUED", "ACTIVE")
    env.run()
    snap = service.get_task(token, tid)
    assert snap["status"] == "SUCCEEDED"
    assert snap["bytes"] == MB(10)


def test_missing_source_rejected_at_submit(world):
    env, service, token, *_ = world
    with pytest.raises(EndpointError, match="does not exist"):
        service.submit(token, "picoprobe-user", "/nope.emd", "alcf-eagle", "/d/a.emd")


def test_unknown_endpoint_rejected(world):
    env, service, token, src_fs, *_ = world
    src_fs.create("/transfer/a.emd", 1, created_at=0)
    with pytest.raises(EndpointError, match="unknown endpoint"):
        service.submit(token, "mystery", "/transfer/a.emd", "alcf-eagle", "/d/a.emd")


def test_acl_denies_unauthorized_writer(world):
    env, service, token, src_fs, dst_fs, auth, alice = world
    bob = auth.register_identity("bob")
    bob_token = auth.issue_token(bob, [TRANSFER_SCOPE], now=0.0)
    src_fs.create("/transfer/a.emd", 1, created_at=0)
    with pytest.raises(PermissionDenied):
        service.submit(bob_token, "picoprobe-user", "/transfer/a.emd", "alcf-eagle", "/d/a.emd")


def test_wrong_scope_rejected(world):
    env, service, token, src_fs, dst_fs, auth, alice = world
    from repro.auth.identity import COMPUTE_SCOPE

    bad = auth.issue_token(alice, [COMPUTE_SCOPE], now=0.0)
    src_fs.create("/transfer/a.emd", 1, created_at=0)
    with pytest.raises(PermissionDenied):
        service.submit(bad, "picoprobe-user", "/transfer/a.emd", "alcf-eagle", "/d/a.emd")


def test_unknown_task_poll_raises(world):
    env, service, token, *_ = world
    with pytest.raises(TransferError):
        service.get_task(token, "xfer-999999")
    with pytest.raises(TransferError):
        service.wait("xfer-999999")


def test_duplicate_endpoint_registration(world):
    env, service, *_ = world
    with pytest.raises(EndpointError, match="already registered"):
        service.register_endpoint(
            TransferEndpoint(name="alcf-eagle", host="eagle-dtn", vfs=VirtualFS("x"))
        )


def test_endpoint_efficiency_slows_transfer(world):
    env, service, token, src_fs, dst_fs, auth, alice = world
    slow = TransferEndpoint(
        name="slow-dest",
        host="eagle-dtn",
        vfs=dst_fs,
        policy=AccessPolicy().allow_write(alice),
        efficiency=0.1,
    )
    service.register_endpoint(slow)
    src_fs.create("/transfer/a.emd", MB(125), created_at=0)
    tid = service.submit(token, "picoprobe-user", "/transfer/a.emd", "slow-dest", "/d/a.emd")
    env.run(until=service.wait(tid))
    # 125 MB at 10% of 1 Gbps ≈ 10 s.
    assert 9.5 < env.now < 12.0


def test_endpoint_validation():
    with pytest.raises(ValueError):
        TransferEndpoint(name="x", host="h", vfs=VirtualFS("v"), efficiency=0)
    with pytest.raises(ValueError):
        TransferEndpoint(name="x", host="h", vfs=VirtualFS("v"), startup_latency_s=-1)


def test_transient_fault_retries_and_succeeds():
    env = Environment()
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", Gbps(1))
    fabric = NetworkFabric(env, topo)
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    src_fs, dst_fs = VirtualFS("s"), VirtualFS("d")
    service = TransferService(
        env,
        fabric,
        auth,
        RngRegistry(4),
        latency_sigma=0.0,
        fault_plan=FaultPlan(transient_prob=0.5, max_attempts=10),
    )
    service.register_endpoint(
        TransferEndpoint(name="s", host="a", vfs=src_fs, policy=AccessPolicy().allow_write(alice))
    )
    service.register_endpoint(
        TransferEndpoint(name="d", host="b", vfs=dst_fs, policy=AccessPolicy().allow_write(alice))
    )
    src_fs.create("/f", MB(125), created_at=0)

    # Run several transfers; with p=0.5 at least one retries, all succeed.
    tids = [
        service.submit(token, "s", "/f", "d", f"/out{i}")
        for i in range(6)
    ]
    env.run()
    tasks = [service.task_record(t) for t in tids]
    assert all(t.status is TaskStatus.SUCCEEDED for t in tasks)
    assert any(t.attempts > 1 for t in tasks)
    assert all(dst_fs.exists(f"/out{i}") for i in range(6))


def test_permanent_failure_after_max_attempts():
    env = Environment()
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", Gbps(1))
    fabric = NetworkFabric(env, topo)
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    src_fs, dst_fs = VirtualFS("s"), VirtualFS("d")
    service = TransferService(
        env,
        fabric,
        auth,
        RngRegistry(0),
        latency_sigma=0.0,
        fault_plan=FaultPlan(transient_prob=1.0, max_attempts=3),
    )
    service.register_endpoint(
        TransferEndpoint(name="s", host="a", vfs=src_fs, policy=AccessPolicy().allow_write(alice))
    )
    service.register_endpoint(
        TransferEndpoint(name="d", host="b", vfs=dst_fs, policy=AccessPolicy().allow_write(alice))
    )
    src_fs.create("/f", MB(10), created_at=0)
    tid = service.submit(token, "s", "/f", "d", "/out")
    env.run()
    task = service.task_record(tid)
    assert task.status is TaskStatus.FAILED
    assert task.attempts == 3
    assert "transient" in task.error
    assert not dst_fs.exists("/out")


def test_corruption_retransmits():
    env = Environment()
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", Gbps(1))
    fabric = NetworkFabric(env, topo)
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    src_fs, dst_fs = VirtualFS("s"), VirtualFS("d")

    class OneCorruptionPlan(FaultPlan):
        """Corrupt exactly the first attempt."""

        def __init__(self):
            super().__init__(corrupt_prob=0.0, max_attempts=4)
            object.__setattr__(self, "_fired", [False])

        def draw(self, rng):
            if not self._fired[0]:
                self._fired[0] = True
                return "corrupt"
            return None

    service = TransferService(
        env, fabric, auth, RngRegistry(0), latency_sigma=0.0, fault_plan=OneCorruptionPlan()
    )
    service.register_endpoint(
        TransferEndpoint(name="s", host="a", vfs=src_fs, policy=AccessPolicy().allow_write(alice))
    )
    service.register_endpoint(
        TransferEndpoint(name="d", host="b", vfs=dst_fs, policy=AccessPolicy().allow_write(alice))
    )
    src_fs.create("/f", MB(125), created_at=0)
    tid = service.submit(token, "s", "/f", "d", "/out")
    env.run()
    task = service.task_record(tid)
    assert task.status is TaskStatus.SUCCEEDED
    assert task.attempts == 2
    assert "checksum mismatch" in task.faults[0]
    # Two full transmissions ≈ 2 s + checksums.
    assert env.now > 2.0


def test_fault_plan_validation():
    with pytest.raises(TransferError):
        FaultPlan(transient_prob=1.5)
    with pytest.raises(TransferError):
        FaultPlan(max_attempts=0)


def test_fault_plan_rejects_probability_sum_above_one():
    """Each prob alone is valid, but the single-uniform draw partitions
    [0, 1) — a sum above 1 would silently truncate the corrupt region
    instead of modelling what the caller asked for."""
    with pytest.raises(TransferError, match="must not exceed 1"):
        FaultPlan(transient_prob=0.7, corrupt_prob=0.5)
    # The boundary itself is legal: corruption fills the remainder.
    plan = FaultPlan(transient_prob=0.6, corrupt_prob=0.4)
    assert plan.transient_prob + plan.corrupt_prob == 1.0


def test_parallel_transfers_contend_for_switch(world):
    """Two simultaneous 125 MB transfers through the shared 1 Gbps link
    take ~2x a single one — the Sec. 3.3 contention effect."""
    env, service, token, src_fs, dst_fs, *_ = world
    src_fs.create("/a", MB(125), created_at=0)
    src_fs.create("/b", MB(125), created_at=0)
    t1 = service.submit(token, "picoprobe-user", "/a", "alcf-eagle", "/d/a")
    t2 = service.submit(token, "picoprobe-user", "/b", "alcf-eagle", "/d/b")
    env.run()
    d1 = service.task_record(t1).duration
    d2 = service.task_record(t2).duration
    assert d1 > 1.8 and d2 > 1.8

def _faulty_world(fault_plan):
    """A two-host world with a metered fabric for byte accounting."""
    from repro.obs.metrics import MetricsRegistry

    env = Environment()
    metrics = MetricsRegistry(env)
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", Gbps(1))
    fabric = NetworkFabric(env, topo, metrics=metrics)
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(alice, [TRANSFER_SCOPE], now=0.0)
    src_fs, dst_fs = VirtualFS("s"), VirtualFS("d")
    service = TransferService(
        env, fabric, auth, RngRegistry(0), latency_sigma=0.0, fault_plan=fault_plan
    )
    service.register_endpoint(
        TransferEndpoint(name="s", host="a", vfs=src_fs, policy=AccessPolicy().allow_write(alice))
    )
    service.register_endpoint(
        TransferEndpoint(name="d", host="b", vfs=dst_fs, policy=AccessPolicy().allow_write(alice))
    )
    return env, service, token, src_fs, metrics


def test_retry_bytes_counted_once_per_wire_traversal():
    """Regression: a retransmitted file must hit ``net.bytes_delivered``
    exactly once per wire traversal — no double counting of the retry,
    no crediting the partial transient attempt with the full size."""

    class ScriptedPlan(FaultPlan):
        """Corrupt attempt 1, then clean."""

        def __init__(self):
            super().__init__(max_attempts=4)
            object.__setattr__(self, "_calls", [0])

        def draw(self, rng):
            self._calls[0] += 1
            return "corrupt" if self._calls[0] == 1 else None

    nbytes = MB(125)

    # Baseline: a clean transfer crosses the wire exactly once.
    env, service, token, src_fs, metrics = _faulty_world(FaultPlan())
    src_fs.create("/f", nbytes, created_at=0)
    service.submit(token, "s", "/f", "d", "/out")
    env.run()
    assert metrics.counter("net.bytes_delivered").value == pytest.approx(nbytes)

    # One corrupt attempt: the file crosses the wire exactly twice.
    env, service, token, src_fs, metrics = _faulty_world(ScriptedPlan())
    src_fs.create("/f", nbytes, created_at=0)
    tid = service.submit(token, "s", "/f", "d", "/out")
    env.run()
    task = service.task_record(tid)
    assert task.status is TaskStatus.SUCCEEDED
    assert task.attempts == 2
    assert metrics.counter("net.bytes_delivered").value == pytest.approx(2 * nbytes)
    # The fault ledger matches the attempt count: every non-final
    # attempt left exactly one fault record.
    assert len(task.faults) == task.attempts - 1


def test_transient_retry_partial_bytes_accounting():
    """A transient fault burns only the partial fraction on the wire;
    delivered bytes land strictly between one and two full traversals."""

    class OneTransientPlan(FaultPlan):
        def __init__(self):
            super().__init__(max_attempts=4)
            object.__setattr__(self, "_calls", [0])

        def draw(self, rng):
            self._calls[0] += 1
            return "transient" if self._calls[0] == 1 else None

    nbytes = MB(125)
    env, service, token, src_fs, metrics = _faulty_world(OneTransientPlan())
    src_fs.create("/f", nbytes, created_at=0)
    tid = service.submit(token, "s", "/f", "d", "/out")
    env.run()
    task = service.task_record(tid)
    assert task.status is TaskStatus.SUCCEEDED
    assert task.attempts == 2
    assert len(task.faults) == 1 and "transient" in task.faults[0]
    assert metrics.counter("net.streams_started").value == 2  # partial + full
    delivered = metrics.counter("net.bytes_delivered").value
    # partial fraction is drawn from [0.05, 0.9] — never free, never full
    assert nbytes * 1.05 <= delivered <= nbytes * 1.9


def test_source_deleted_before_execution_fails_task(world):
    """Regression: a source vanishing between submission and execution
    start used to kill the execute process, leaving the task stuck
    ACTIVE and its waiters pending forever."""
    env, service, token, src_fs, dst_fs, *_ = world
    src_fs.create("/transfer/gone.emd", MB(10), created_at=0)
    tid = service.submit(
        token, "picoprobe-user", "/transfer/gone.emd", "alcf-eagle", "/data/gone.emd"
    )
    src_fs.delete("/transfer/gone.emd")  # vanishes before execution starts
    done = service.wait(tid)
    env.run()
    task = service.task_record(tid)
    assert task.status is TaskStatus.FAILED
    assert task.completed_at is not None
    assert "disappeared" in task.error
    assert done.triggered  # waiters released, not stuck
    assert not dst_fs.exists("/data/gone.emd")
