"""Tests for the Argonne testbed wiring and calibration."""

from __future__ import annotations

import pytest

from repro.errors import CalibrationError
from repro.testbed import (
    DEFAULT_CALIBRATION,
    EAGLE_EP,
    PICOPROBE_EP,
    POLARIS_EP,
    Calibration,
    build_testbed,
)
from repro.units import MB, Gbps


def test_build_testbed_wires_everything():
    tb = build_testbed(seed=0)
    assert tb.transfer.endpoint(PICOPROBE_EP).host == "picoprobe-user-machine"
    assert tb.transfer.endpoint(EAGLE_EP).host == "eagle-dtn"
    assert tb.compute.endpoint(POLARIS_EP) is tb.polaris
    assert tb.portal_index.name == "picoprobe-portal"
    # All three providers registered.
    for name in ("transfer", "compute", "search_ingest"):
        tb.flows.provider(name)
    assert tb.operator.username == "operator"


def test_topology_matches_paper_capacities():
    tb = build_testbed()
    assert tb.topology.bottleneck_capacity(
        "picoprobe-user-machine", "eagle-dtn"
    ) == Gbps(1)
    assert tb.topology.bottleneck_capacity("anl-backbone", "eagle-dtn") == Gbps(200)


def test_token_covers_all_services():
    tb = build_testbed()
    # Each service authorizer accepts the operator token.
    tb.transfer.authorizer.authorize(tb.token, now=0.0)
    tb.compute.authorizer.authorize(tb.token, now=0.0)
    tb.flows.authorizer.authorize(tb.token, now=0.0)


def test_calibration_validation():
    with pytest.raises(CalibrationError):
        Calibration(site_switch_bps=0)
    with pytest.raises(CalibrationError):
        Calibration(endpoint_efficiency=1.5)
    with pytest.raises(CalibrationError):
        Calibration(backoff_initial_s=2.0, backoff_max_s=1.0)


def test_effective_rate_concave_in_size():
    cal = DEFAULT_CALIBRATION
    small = cal.effective_rate_bps(MB(91))
    large = cal.effective_rate_bps(MB(1200))
    assert small < large
    # Paper-derived targets: ~6 MB/s small, ~10.4 MB/s large.
    assert 4e6 < small < 8e6
    assert 9e6 < large < 12e6


def test_cold_start_budget():
    cal = DEFAULT_CALIBRATION
    assert 40 < cal.cold_start_budget_s() < 120


def test_same_seed_same_testbed_behaviour():
    import repro.core as core

    a = core.run_campaign("hyperspectral", duration_s=300, seed=5)
    b = core.run_campaign("hyperspectral", duration_s=300, seed=5)
    ra = [round(r.runtime_seconds, 6) for r in a.completed_runs]
    rb = [round(r.runtime_seconds, 6) for r in b.completed_runs]
    assert ra == rb
