"""EMD files holding multiple signal groups (the hierarchical case)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.emd import EmdFile, H5LiteWriter
from repro.emd.emdfile import EMD_GROUP_TYPE, EMD_VERSION
from repro.errors import FormatError


def write_two_signal_file(path):
    """Hand-build an EMD container with two signal groups."""
    with H5LiteWriter(path) as w:
        root = w.require_group("/")
        root.attrs["version_major"] = EMD_VERSION[0]
        root.attrs["version_minor"] = EMD_VERSION[1]
        for name, shape in (("scan_a", (4, 4, 8)), ("scan_b", (6, 6, 8))):
            g = w.require_group(f"data/{name}")
            g.attrs["emd_group_type"] = EMD_GROUP_TYPE
            g.attrs["signal_type"] = "hyperspectral"
            w.create_dataset(f"data/{name}/data", np.random.default_rng(0).random(shape))
            for ax, n in enumerate(shape, start=1):
                w.create_dataset(f"data/{name}/dim{ax}", np.arange(float(n)))
                mg = w.require_group(f"data/{name}/_dim{ax}_meta")
                mg.attrs["name"] = f"axis{ax}"
                mg.attrs["units"] = "px"


def test_multiple_signals_enumerated(tmp_path):
    path = tmp_path / "multi.emd"
    write_two_signal_file(path)
    with EmdFile(path) as f:
        assert f.signal_names() == ["scan_a", "scan_b"]
        a = f.signal("scan_a")
        b = f.signal("scan_b")
        assert a.shape == (4, 4, 8)
        assert b.shape == (6, 6, 8)


def test_ambiguous_default_signal_raises(tmp_path):
    path = tmp_path / "multi.emd"
    write_two_signal_file(path)
    with EmdFile(path) as f:
        with pytest.raises(FormatError, match="exactly one signal"):
            f.signal()


def test_non_signal_group_rejected(tmp_path):
    path = tmp_path / "odd.emd"
    with H5LiteWriter(path) as w:
        root = w.require_group("/")
        root.attrs["version_major"] = EMD_VERSION[0]
        root.attrs["version_minor"] = EMD_VERSION[1]
        g = w.require_group("data/notasignal")
        g.attrs["comment"] = "no emd_group_type marker"
        w.create_dataset("data/notasignal/data", np.zeros((2, 2)))
    with EmdFile(path) as f:
        with pytest.raises(FormatError, match="not an EMD signal group"):
            f.signal("notasignal")


def test_wrong_version_rejected(tmp_path):
    path = tmp_path / "old.emd"
    with H5LiteWriter(path) as w:
        root = w.require_group("/")
        root.attrs["version_major"] = 99
        root.attrs["version_minor"] = 0
    with pytest.raises(FormatError, match="version"):
        EmdFile(path)
