"""F4xx pack: whole-flow payload dataflow analysis against the declared
provider schemas, and the single-source schema registry behind it."""

from __future__ import annotations

import textwrap
from types import MappingProxyType

import pytest

from repro.lint import (
    Analyzer,
    LintConfig,
    ProviderSchema,
    discover_provider_names,
    discover_provider_schemas,
)


def lint(source: str, **config_kwargs):
    config_kwargs.setdefault("allow", {})
    analyzer = Analyzer(config=LintConfig(**config_kwargs))
    return analyzer.lint_source(textwrap.dedent(source), path="snippet.py")


def rule_ids(source: str, **config_kwargs):
    return [d.rule_id for d in lint(source, **config_kwargs)]


#: A well-formed transfer state reused across fixtures.
TRANSFER_A = """\
FlowState(name="A", provider="transfer", next="B",
          parameters={"source_endpoint": "$.input.src_ep",
                      "source_path": "$.input.src",
                      "dest_endpoint": "$.input.dst_ep",
                      "dest_path": "$.input.dst"}),
"""


def flow(second_state: str) -> str:
    return (
        'd = FlowDefinition(\n'
        '    title="t", start_at="A",\n'
        '    states=(\n'
        + textwrap.indent(TRANSFER_A, " " * 8)
        + textwrap.indent(second_state, " " * 8)
        + "    ),\n)\n"
    )


# -- F401: dangling payload references ----------------------------------------


def test_f401_fires_on_key_no_upstream_state_produces():
    src = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": "$.input.ep",\n'
        '                      "function_id": "$.states.A.no_such_key"}),\n'
    )
    ds = lint(src)
    assert [d.rule_id for d in ds] == ["F401"]
    assert "only produces keys" in ds[0].message


def test_f401_fires_on_unknown_template_root():
    src = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": "$.oops.thing",\n'
        '                      "function_id": "$.input.fn"}),\n'
    )
    ds = [d for d in lint(src) if d.rule_id == "F401"]
    assert len(ds) == 1
    assert "$.input" in ds[0].message and "'oops'" in ds[0].message


def test_f401_clean_on_declared_outputs_and_opaque_input():
    src = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": "$.input.anything_at_all",\n'
        '                      "function_id": "$.states.A.task_id"}),\n'
    )
    assert rule_ids(src) == []


def test_f401_gives_undeclared_providers_benefit_of_the_doubt():
    # Provider registered name-only (no schemas): its outputs are opaque.
    schemas = dict(discover_provider_schemas())
    schemas["mystery"] = ProviderSchema(name="mystery")
    src = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(
            FlowState(name="A", provider="mystery", next="B"),
            FlowState(name="B", provider="mystery",
                      parameters={"x": "$.states.A.whatever"}),
        ),
    )
    """
    assert rule_ids(src, provider_schemas=MappingProxyType(schemas)) == []


# -- F402: parameters outside the input schema --------------------------------


def test_f402_fires_on_unknown_parameter():
    src = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": "$.input.ep",\n'
        '                      "function_id": "$.input.fn",\n'
        '                      "bogus": 1}),\n'
    )
    ds = [d for d in lint(src) if d.rule_id == "F402"]
    assert len(ds) == 1
    assert "'bogus'" in ds[0].message


def test_f402_fires_on_missing_required_parameter():
    src = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": "$.input.ep"}),\n'
    )
    ds = [d for d in lint(src) if d.rule_id == "F402"]
    assert len(ds) == 1
    assert "'function_id'" in ds[0].message and "requires" in ds[0].message


def test_f402_optional_parameters_may_be_omitted_or_supplied():
    with_optional = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": "$.input.ep",\n'
        '                      "function_id": "$.input.fn",\n'
        '                      "kwargs": {"k": "$.states.A.task_id"}}),\n'
    )
    assert rule_ids(with_optional) == []


def test_f402_checks_bare_flowstate_fragments_outside_definitions():
    # Gladier tool fragments are plain FlowState calls, no FlowDefinition.
    src = 's = FlowState(name="X", provider="transfer", parameters={"wrong": 1})\n'
    assert "F402" in rule_ids(src)


def test_f402_skips_missing_required_when_keys_are_dynamic():
    src = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": "$.input.ep", **extra}),\n'
    )
    assert rule_ids(src) == []


# -- F403: conflicting payload types ------------------------------------------


def test_f403_fires_on_wrong_literal_type():
    src = flow(
        'FlowState(name="B", provider="compute",\n'
        '          parameters={"endpoint": 42,\n'
        '                      "function_id": "$.input.fn"}),\n'
    )
    ds = [d for d in lint(src) if d.rule_id == "F403"]
    assert len(ds) == 1
    assert "'str'" in ds[0].message and "'int'" in ds[0].message


def test_f403_fires_on_template_type_conflict_through_the_dataflow():
    # compute's cold_start is declared bool; transfer's dest_path is str.
    src = """
    d = FlowDefinition(
        title="t", start_at="A",
        states=(
            FlowState(name="A", provider="compute", next="B",
                      parameters={"endpoint": "$.input.ep",
                                  "function_id": "$.input.fn"}),
            FlowState(name="B", provider="transfer",
                      parameters={"source_endpoint": "$.input.a",
                                  "source_path": "$.input.b",
                                  "dest_endpoint": "$.input.c",
                                  "dest_path": "$.states.A.cold_start"}),
        ),
    )
    """
    ds = [d for d in lint(src) if d.rule_id == "F403"]
    assert len(ds) == 1
    assert "cold_start" in ds[0].message


def test_f403_fires_on_duplicate_key_overwrite():
    src = (
        's = FlowState(name="X", provider="search_ingest",\n'
        '              parameters={"index": "$.input.i", "subject": "$.input.s",\n'
        '                          "content": {}, "subject": 7})\n'
    )
    ds = [d for d in lint(src) if d.rule_id == "F403"]
    assert any("duplicate parameter key 'subject'" in d.message for d in ds)


def test_f403_numeric_types_inter_match():
    config = dict(
        provider_schemas=MappingProxyType(
            {
                "meter": ProviderSchema(
                    name="meter",
                    input_schema=MappingProxyType({"level": "number"}),
                    output_schema=MappingProxyType({}),
                )
            }
        )
    )
    ok = 's = FlowState(name="X", provider="meter", parameters={"level": 3})\n'
    bad = 's = FlowState(name="X", provider="meter", parameters={"level": "hi"})\n'
    assert rule_ids(ok, **config) == []
    assert "F403" in rule_ids(bad, **config)


# -- F404: providers must declare schemas -------------------------------------


def test_f404_fires_on_provider_without_schemas():
    src = """
    class BareProvider:
        name = "bare"
        def run(self, body): ...
        def status(self, action_id): ...
    """
    ds = [d for d in lint(src) if d.rule_id == "F404"]
    assert len(ds) == 1
    assert "input_schema" in ds[0].message and "output_schema" in ds[0].message


def test_f404_clean_with_literal_schemas_and_skips_non_providers():
    declared = """
    class GoodProvider:
        name = "good"
        input_schema = {"path": "str", "retries?": "int"}
        output_schema = {"task_id": "str"}
        def run(self, body): ...
        def status(self, action_id): ...
    """
    not_a_provider = """
    class Service:
        def run(self, body): ...
        def status(self, action_id): ...
    """
    assert rule_ids(declared) == []
    assert rule_ids(not_a_provider) == []


# -- the schema registry (single source of truth) -----------------------------


def test_registry_carries_schemas_for_every_shipped_provider():
    schemas = discover_provider_schemas()
    for name in ("transfer", "compute", "search_ingest", "local_compress"):
        schema = schemas[name]
        assert schema.input_schema is not None, name
        assert schema.output_schema is not None, name


def test_known_providers_is_derived_from_the_schema_registry():
    config = LintConfig(allow={})
    assert config.known_providers == frozenset(config.provider_schemas)
    assert discover_provider_names() == frozenset(discover_provider_schemas())


def test_provider_schema_required_accepted_and_param_type():
    schema = discover_provider_schemas()["compute"]
    assert schema.required_params == frozenset({"endpoint", "function_id"})
    assert {"args", "kwargs"} <= schema.accepted_params
    assert schema.param_type("kwargs") == "dict"
    assert schema.param_type("nope") is None


def test_f4xx_rules_are_registered():
    from repro.lint import all_rules

    catalog = all_rules()
    for rid in ("F401", "F402", "F403", "F404"):
        assert rid in catalog


def test_runtime_check_body_enforces_the_same_contract():
    # The static schema and the runtime guard share one declaration.
    from repro.flows import check_body

    schema = {"endpoint": "str", "function_id": "str", "kwargs?": "dict"}
    check_body("compute", schema, {"endpoint": "e", "function_id": "f"})
    with pytest.raises(ValueError, match="function_id"):
        check_body("compute", schema, {"endpoint": "e"})
    with pytest.raises(ValueError, match="bogus"):
        check_body("compute", schema, {"endpoint": "e", "function_id": "f", "bogus": 1})
