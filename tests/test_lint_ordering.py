"""Positive + negative cases for every N7xx rule, pinned to the same
``example_bad``/``example_good`` pairs ``--explain`` prints, plus the
flow-sensitivity cases that separate this pack from D1xx."""

from __future__ import annotations

import pytest

from repro.lint import Analyzer, all_rules

N7_RULES = ["N701", "N702", "N703", "N704", "N705"]


def rule_ids(source: str):
    return [d.rule_id for d in Analyzer().lint_source(source)]


@pytest.mark.parametrize("rid", N7_RULES)
def test_example_pair_is_honest(rid):
    # the documented example pair: bad fires its own rule, good is
    # completely clean (not just N-clean — it is held up as model code)
    cls = all_rules()[rid]
    assert rid in rule_ids(cls.example_bad)
    assert rule_ids(cls.example_good) == []


def test_n701_fires_interprocedurally():
    src = (
        "import os\n"
        "\n"
        "def _names(root):\n"
        "    return os.listdir(root)\n"
        "\n"
        "def arm(env, root):\n"
        "    for n, _ in enumerate(_names(root)):\n"
        "        yield env.timeout(n)\n"
    )
    assert "N701" in rule_ids(src)


def test_n701_silent_when_helper_sorts():
    src = (
        "import os\n"
        "\n"
        "def _names(root):\n"
        "    return sorted(os.listdir(root))\n"
        "\n"
        "def arm(env, root):\n"
        "    for n, _ in enumerate(_names(root)):\n"
        "        yield env.timeout(n)\n"
    )
    assert "N701" not in rule_ids(src)


def test_n701_covers_schedule_delay_argument():
    src = (
        "def kick(env, ev, pending):\n"
        "    delay = sum(set(pending))\n"
        "    env.schedule(ev, delay)\n"
    )
    assert "N701" in rule_ids(src)


def test_n702_keyed_store_is_blessed():
    src = (
        "from concurrent.futures import as_completed\n"
        "\n"
        "def gather(futures):\n"
        "    out = {}\n"
        "    for fut in as_completed(futures):\n"
        "        out[futures[fut]] = fut.result()\n"
        "    return [out[k] for k in sorted(out)]\n"
    )
    assert "N702" not in rule_ids(src)


def test_n702_fires_on_imap_unordered():
    src = (
        "def gather(pool, work):\n"
        "    out = []\n"
        "    for res in pool.imap_unordered(work, range(8)):\n"
        "        out.append(res)\n"
        "    return out\n"
    )
    assert "N702" in rule_ids(src)


def test_n702_fires_on_completion_order_yield():
    src = (
        "from concurrent.futures import as_completed\n"
        "\n"
        "def stream(futures):\n"
        "    for fut in as_completed(futures):\n"
        "        yield fut.result()\n"
    )
    assert "N702" in rule_ids(src)


def test_n703_fsum_is_the_blessed_reduction():
    src = (
        "import math\n"
        "\n"
        "def total(values):\n"
        "    return math.fsum(set(values))\n"
    )
    assert "N703" not in rule_ids(src)


def test_n703_fires_on_emitted_order_taint():
    src = (
        "import os\n"
        "\n"
        "def probe(metric, root):\n"
        "    latest = 0.0\n"
        "    for n, _ in enumerate(os.listdir(root)):\n"
        "        latest = latest + n\n"
        "    metric.observe(latest)\n"
    )
    assert "N703" in rule_ids(src)


def test_n704_fires_on_hash_tiebreak():
    src = "def rank(items):\n    return sorted(items, key=hash)\n"
    assert "N704" in rule_ids(src)


def test_n704_silent_on_stable_attribute_key():
    src = "def rank(items):\n    return sorted(items, key=lambda i: i.seq)\n"
    assert "N704" not in rule_ids(src)


def test_n705_flow_not_just_call_site():
    # the read sits in one function, the sink in another — D101 flags
    # the read, N705 must flag the *flow* in the scheduling function
    src = (
        "import time\n"
        "\n"
        "def _stamp():\n"
        "    return time.time()\n"
        "\n"
        "def launch(env):\n"
        "    yield env.timeout(_stamp() % 1.0)\n"
    )
    diags = Analyzer().lint_source(src)
    n705 = [d for d in diags if d.rule_id == "N705"]
    assert len(n705) == 1
    assert n705[0].line == 7  # the env.timeout line, not the read


def test_n705_seeded_rng_is_clean():
    src = (
        "def _jitter(rng):\n"
        "    return rng.random()\n"
        "\n"
        "def launch(env, rng):\n"
        "    yield env.timeout(_jitter(rng))\n"
    )
    assert "N705" not in rule_ids(src)


def test_n7_findings_respect_noqa():
    src = (
        "import os\n"
        "\n"
        "def arm(env, root):\n"
        "    for n, _ in enumerate(os.listdir(root)):\n"
        "        yield env.timeout(n)  # repro: noqa[N701]  reviewed\n"
    )
    assert "N701" not in rule_ids(src)


def test_n7_rules_are_errors():
    catalog = all_rules()
    for rid in N7_RULES:
        assert str(catalog[rid].severity) == "error"


def test_n7_rules_are_selectable():
    from repro.lint import LintConfig

    src = (
        "import os\n"
        "\n"
        "def arm(env, root):\n"
        "    for n, _ in enumerate(os.listdir(root)):\n"
        "        yield env.timeout(n)\n"
    )
    only = Analyzer(config=LintConfig(select=frozenset({"N701"})))
    assert [d.rule_id for d in only.lint_source(src)] == ["N701"]
    without = Analyzer(config=LintConfig(ignore=frozenset({"N701"})))
    assert "N701" not in [d.rule_id for d in without.lint_source(src)]
