"""Tests for the search substrate: schema, index, service."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth import AuthClient
from repro.auth.identity import SEARCH_INGEST_SCOPE, SEARCH_QUERY_SCOPE
from repro.errors import PermissionDenied, SchemaError, SearchError
from repro.rng import RngRegistry
from repro.search import (
    FieldFilter,
    SearchIndex,
    SearchService,
    make_record,
    validate_datacite,
)
from repro.sim import Environment


def record(ident="doi:1", title="hyperspectral scan", year=2023, **ext):
    return make_record(ident, title, ["alice"], year, **ext)


# -- DataCite schema ---------------------------------------------------------


def test_make_record_valid():
    doc = record(subjects=["microscopy", "gold"])
    assert doc["identifier"] == "doi:1"
    assert doc["subjects"] == ["microscopy", "gold"]


def test_missing_fields_listed():
    with pytest.raises(SchemaError) as ei:
        validate_datacite({"title": "x"})
    msg = str(ei.value)
    assert "identifier" in msg and "creators" in msg and "publication_year" in msg


def test_bad_year_rejected():
    with pytest.raises(SchemaError, match="publication_year"):
        record(year=99)


def test_bad_creators_rejected():
    with pytest.raises(SchemaError, match="creator"):
        make_record("d", "t", [], 2023)
    with pytest.raises(SchemaError, match="creator"):
        make_record("d", "t", [""], 2023)


def test_non_dict_rejected():
    with pytest.raises(SchemaError):
        validate_datacite("nope")


def test_bad_subjects_rejected():
    with pytest.raises(SchemaError, match="subjects"):
        record(subjects="not-a-list")


# -- index: ingest + free text -------------------------------------------------


def test_ingest_and_get():
    idx = SearchIndex("portal")
    idx.ingest("s1", record(), now=5.0)
    e = idx.get("s1")
    assert e.content["title"] == "hyperspectral scan"
    assert e.ingested_at == 5.0
    assert len(idx) == 1


def test_ingest_replaces_subject():
    idx = SearchIndex("portal")
    idx.ingest("s1", record(title="first title zephyr"))
    idx.ingest("s1", record(title="second title quixote"))
    assert len(idx) == 1
    assert len(idx.query(q="zephyr")) == 0
    assert len(idx.query(q="quixote")) == 1


def test_invalid_record_rejected_at_ingest():
    idx = SearchIndex("portal")
    with pytest.raises(SchemaError):
        idx.ingest("s1", {"title": "no identifier"})


def test_free_text_ranking_prefers_higher_tf():
    idx = SearchIndex("portal")
    idx.ingest("a", record("d1", "gold gold gold nanoparticle"))
    idx.ingest("b", record("d2", "gold film"))
    idx.ingest("c", record("d3", "carbon background"))
    res = idx.query(q="gold")
    assert res.subjects() == ["a", "b"]
    assert res.hits[0].score > res.hits[1].score


def test_query_no_text_returns_newest_first():
    idx = SearchIndex("portal")
    idx.ingest("old", record("d1"), now=1.0)
    idx.ingest("new", record("d2"), now=9.0)
    res = idx.query()
    assert res.subjects() == ["new", "old"]


def test_query_limit_offset():
    idx = SearchIndex("portal")
    for i in range(10):
        idx.ingest(f"s{i}", record(f"d{i}"), now=float(i))
    res = idx.query(limit=3)
    assert len(res) == 3
    assert res.total_matched == 10
    res2 = idx.query(limit=3, offset=3)
    assert set(res.subjects()).isdisjoint(res2.subjects())
    with pytest.raises(SearchError):
        idx.query(limit=-1)


def test_delete():
    idx = SearchIndex("portal")
    idx.ingest("s1", record())
    idx.delete("s1")
    assert len(idx) == 0
    assert len(idx.query(q="hyperspectral")) == 0
    with pytest.raises(SearchError):
        idx.delete("s1")


# -- filters + facets -------------------------------------------------------------


def test_field_filters():
    idx = SearchIndex("portal")
    idx.ingest("a", record("d1", year=2022, experiment={"signal_type": "hyperspectral"}))
    idx.ingest("b", record("d2", year=2023, experiment={"signal_type": "spatiotemporal"}))
    eq = idx.query(filters=[FieldFilter("experiment.signal_type", "eq", "hyperspectral")])
    assert eq.subjects() == ["a"]
    ge = idx.query(filters=[FieldFilter("publication_year", "ge", 2023)])
    assert ge.subjects() == ["b"]
    both = idx.query(
        filters=[
            FieldFilter("publication_year", "between", (2022, 2023)),
            FieldFilter("experiment.signal_type", "ne", "hyperspectral"),
        ]
    )
    assert both.subjects() == ["b"]


def test_filter_missing_path_excludes():
    idx = SearchIndex("portal")
    idx.ingest("a", record("d1"))
    assert idx.query(filters=[FieldFilter("nope.deep", "eq", 1)]).subjects() == []


def test_filter_date_range_iso_strings():
    idx = SearchIndex("portal")
    idx.ingest("a", record("d1", dates={"created": "2023-06-01T00:10:00"}))
    idx.ingest("b", record("d2", dates={"created": "2023-06-01T02:00:00"}))
    res = idx.query(
        filters=[
            FieldFilter(
                "dates.created",
                "between",
                ("2023-06-01T00:00:00", "2023-06-01T01:00:00"),
            )
        ]
    )
    assert res.subjects() == ["a"]


def test_unknown_filter_op():
    with pytest.raises(SearchError):
        FieldFilter("x", "regex", ".*")


def test_facets_count_values():
    idx = SearchIndex("portal")
    idx.ingest("a", record("d1", experiment={"signal_type": "hyperspectral"}))
    idx.ingest("b", record("d2", experiment={"signal_type": "hyperspectral"}))
    idx.ingest("c", record("d3", experiment={"signal_type": "spatiotemporal"}))
    res = idx.query(facet_fields=["experiment.signal_type"])
    assert res.facets["experiment.signal_type"] == {
        "hyperspectral": 2,
        "spatiotemporal": 1,
    }


def test_facets_over_list_values():
    idx = SearchIndex("portal")
    idx.ingest("a", record("d1", subjects=["gold", "film"]))
    idx.ingest("b", record("d2", subjects=["gold"]))
    res = idx.query(facet_fields=["subjects"])
    assert res.facets["subjects"] == {"gold": 2, "film": 1}


# -- visibility --------------------------------------------------------------------


def test_visibility_filtering():
    auth = AuthClient()
    alice = auth.register_identity("alice")
    bob = auth.register_identity("bob")
    idx = SearchIndex("portal")
    idx.ingest("pub", record("d1"), visible_to=("public",))
    idx.ingest("priv", record("d2"), visible_to=(alice.urn,))
    assert idx.query(identity=None).subjects() == ["pub"]
    assert set(idx.query(identity=alice).subjects()) == {"pub", "priv"}
    assert idx.query(identity=bob).subjects() == ["pub"]


def test_get_respects_visibility():
    auth = AuthClient()
    alice = auth.register_identity("alice")
    idx = SearchIndex("portal")
    idx.ingest("priv", record(), visible_to=(alice.urn,))
    idx.get("priv", identity=alice)
    with pytest.raises(SearchError):
        idx.get("priv", identity=None)


def test_empty_visible_to_rejected():
    idx = SearchIndex("portal")
    with pytest.raises(SearchError):
        idx.ingest("s", record(), visible_to=())


def test_bad_subject_rejected():
    idx = SearchIndex("portal")
    with pytest.raises(SearchError):
        idx.ingest("", record())


# -- service (auth + timing) --------------------------------------------------------


def test_search_service_auth_and_latency():
    env = Environment()
    auth = AuthClient()
    alice = auth.register_identity("alice")
    ok = auth.issue_token(alice, [SEARCH_INGEST_SCOPE, SEARCH_QUERY_SCOPE], now=0.0)
    svc = SearchService(env, auth, RngRegistry(0), ingest_latency_s=0.8, latency_sigma=0.0)
    svc.create_index("portal")
    out = {}

    def run(env):
        yield from svc.ingest(ok, "portal", "s1", record())
        out["ingested_at"] = env.now
        res = yield from svc.query(ok, "portal", q="hyperspectral")
        out["res"] = res

    env.process(run(env))
    env.run()
    assert out["ingested_at"] == pytest.approx(0.8)
    assert out["res"].subjects() == ["s1"]


def test_search_service_scope_enforced():
    env = Environment()
    auth = AuthClient()
    alice = auth.register_identity("alice")
    query_only = auth.issue_token(alice, [SEARCH_QUERY_SCOPE], now=0.0)
    svc = SearchService(env, auth, RngRegistry(0))
    svc.create_index("portal")

    def run(env):
        with pytest.raises(PermissionDenied):
            yield from svc.ingest(query_only, "portal", "s1", record())
        yield env.timeout(0)

    env.process(run(env))
    env.run()


def test_search_service_duplicate_index():
    env = Environment()
    svc = SearchService(env, AuthClient())
    svc.create_index("a")
    with pytest.raises(ValueError):
        svc.create_index("a")
    with pytest.raises(ValueError):
        svc.index("missing")


# -- properties -----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(st.lists(st.text(alphabet="abcdef ", min_size=1, max_size=30), min_size=1, max_size=15))
def test_ingest_then_query_total_consistency(titles):
    """Property: every ingested record is findable by its own title terms
    (when they tokenize to something)."""
    idx = SearchIndex("p", validate=False)
    for i, t in enumerate(titles):
        idx.ingest(f"s{i}", {"title": t})
    for i, t in enumerate(titles):
        toks = [w for w in t.split() if w]
        if not toks:
            continue
        res = idx.query(q=toks[0], limit=len(titles))
        assert f"s{i}" in res.subjects()


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 30), st.integers(0, 29))
def test_pagination_partition_property(n, offset):
    """Property: limit/offset windows partition the full result list."""
    idx = SearchIndex("p", validate=False)
    for i in range(n):
        idx.ingest(f"s{i:02d}", {"title": "x"}, now=float(i))
    full = idx.query(limit=n).subjects()
    window = idx.query(limit=5, offset=offset).subjects()
    assert window == full[offset : offset + 5]
