"""`Dataset.view` — zero-copy slice-on-demand reads.

Covers equality with full reads over every layout/compression combo,
chunk-boundary edge cases (partial trailing chunks, negative and
strided slices, whole-chunk hops), the zero-copy guarantees of the
mmap-backed paths, and the I/O-accounting regression that a band read
touches only that band's chunks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.emd.h5lite import H5LiteFile, H5LiteWriter

KEYS = [
    (slice(None),),
    (slice(2, 9),),
    (slice(None, None, 3), slice(1, None, 2), slice(None, None, -1)),
    (slice(None, None, -2),),
    (5, slice(3, 14, 4), slice(None, None, -3)),
    (slice(12, 2, -3), 4, slice(0, 11)),
    (-1, -2, -3),
    (slice(8, 8),),  # empty
    (slice(None, None, -1), slice(None, None, -1), slice(None, None, -1)),
    (slice(1, 2), slice(2, 4), slice(3, 8)),  # inside one chunk
    (slice(0, 13, 7),),  # step hops whole chunks
    (slice(11, None, -5), slice(16, 0, -4), slice(10, 1, -2)),
]


@pytest.fixture(scope="module")
def cube_file(tmp_path_factory):
    # (13, 17, 11) with chunk (4, 5, 11): partial chunks on the first
    # two axes exercise trailing-extent arithmetic.
    rng = np.random.default_rng(0)
    data = rng.normal(size=(13, 17, 11))
    path = tmp_path_factory.mktemp("h5view") / "cube.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("/contig", data=data)
        w.create_dataset("/contig_z", data=data, compression="zlib")
        w.create_dataset("/chunk", data=data, chunks=(4, 5, 11))
        w.create_dataset("/chunk_z", data=data, chunks=(4, 5, 11), compression="zlib")
    return path, data


@pytest.mark.parametrize(
    "name", ["contig", "contig_z", "chunk", "chunk_z"]
)
def test_view_equals_numpy_indexing(cube_file, name):
    path, data = cube_file
    with H5LiteFile(path) as f:
        ds = f[name]
        for key in KEYS:
            got = ds.view(key)
            exp = data[key]
            assert got.shape == exp.shape, key
            assert np.array_equal(got, exp), key
        assert np.array_equal(ds.view(), data)
        assert np.array_equal(ds.view(3), data[3])


def test_view_equals_full_read(cube_file):
    path, data = cube_file
    with H5LiteFile(path) as f:
        for name in ("contig", "contig_z", "chunk", "chunk_z"):
            assert np.array_equal(f[name].view(), f[name].read())


def test_view_errors(cube_file):
    path, _ = cube_file
    with H5LiteFile(path) as f:
        ds = f["chunk"]
        with pytest.raises(IndexError):
            ds.view((0, 0, 0, 0))
        with pytest.raises(IndexError):
            ds.view(13)
        with pytest.raises(IndexError):
            ds.view(-14)
        with pytest.raises(IndexError):
            ds.view("bad")
        with pytest.raises(IndexError):
            ds.view(slice(None, None, 0))


def test_getitem_api_unchanged(cube_file):
    # The pinned __getitem__ contract: steps stay rejected there; the
    # new capability lives in view() only.
    path, data = cube_file
    with H5LiteFile(path) as f:
        with pytest.raises(IndexError):
            f["chunk"][::2]
        assert np.array_equal(f["chunk"][2:7, 1:9], data[2:7, 1:9])


def test_view_zero_copy_contiguous(cube_file):
    path, data = cube_file
    with H5LiteFile(path) as f:
        v = f["contig"].view((slice(2, 5),))
        # A real view: read-only, rooted in a non-ndarray buffer (the
        # mmap), not a fresh allocation.
        assert not v.flags.writeable
        assert v.base is not None
        assert np.array_equal(v, data[2:5])


def test_view_zero_copy_single_chunk(cube_file):
    path, data = cube_file
    with H5LiteFile(path) as f:
        v = f["chunk"].view((slice(1, 2), slice(2, 4), slice(3, 8)))
        assert not v.flags.writeable
        assert np.array_equal(v, data[1:2, 2:4, 3:8])
        # Crossing a chunk boundary or decompressing forces a copy.
        assert f["chunk"].view((slice(3, 6),)).flags.writeable
        assert f["chunk_z"].view((slice(1, 2), slice(2, 4), slice(3, 8))).flags.writeable


def test_view_valid_after_close(cube_file):
    # mmap-backed views outlive the file handle (the mapping survives
    # fd close; close() defers teardown while views pin the buffer).
    path, data = cube_file
    f = H5LiteFile(path)
    v = f["contig"].view((slice(0, 4),))
    f.close()
    assert np.array_equal(v, data[:4])


def test_band_read_touches_only_band_chunks(cube_file):
    # Regression: a chunk-aligned band view must decode exactly the
    # chunks under the band — grid is (4, 4, 1), so one time-band of 4
    # rows (one time-chunk) crosses 1*4*1 = 4 chunks.
    path, data = cube_file
    with H5LiteFile(path) as f:
        ds = f["chunk"]
        before = dict(f.read_stats)
        band = ds.view((slice(4, 8),))
        assert np.array_equal(band, data[4:8])
        assert f.read_stats["block_reads"] - before["block_reads"] == 4

        # A whole-chunk hop (step 7 over chunk height 4) reads only the
        # two chunks actually containing selected rows.
        before = dict(f.read_stats)
        ds.view((slice(0, 13, 7), slice(0, 1), slice(0, 1)))
        assert f.read_stats["block_reads"] - before["block_reads"] == 2

        # Full read for scale: all 16 chunks.
        before = dict(f.read_stats)
        ds.read()
        assert f.read_stats["block_reads"] - before["block_reads"] == 16


def test_view_1d_and_2d_edges(tmp_path):
    rng = np.random.default_rng(1)
    a1 = rng.normal(size=(101,))
    a2 = (rng.random((64, 64)) * 1000).astype(np.int32)
    path = tmp_path / "edges.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("/a1", data=a1, chunks=(7,))
        w.create_dataset("/a2", data=a2, chunks=(16, 16))
        w.create_dataset("/a2z", data=a2, chunks=(16, 16), compression="zlib")
    with H5LiteFile(path) as f:
        for key in [
            slice(None, None, -4), slice(99, None, -1), 100, slice(3, 98, 13),
            slice(0, 0), slice(100, 101),
        ]:
            assert np.array_equal(f["a1"].view(key), a1[key]), key
        for key in [
            (slice(None, None, -1),),
            (slice(3, 60, 7), slice(50, 3, -5)),
            (17,),
            (slice(0, 0), slice(None)),
            (slice(15, 17), slice(31, 33)),  # straddles chunk corners
        ]:
            assert np.array_equal(f["a2"].view(key), a2[key]), key
            assert np.array_equal(f["a2z"].view(key), a2[key]), key
        assert f["a2"].view((17,)).dtype == np.int32


def test_view_preserves_dtype_and_order(tmp_path):
    data = np.arange(5 * 6, dtype=np.uint16).reshape(5, 6)
    path = tmp_path / "dtype.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("/d", data=data, chunks=(2, 3))
    with H5LiteFile(path) as f:
        v = f["d"].view((slice(None, None, -1), slice(None, None, -2)))
        assert v.dtype == np.uint16
        assert np.array_equal(v, data[::-1, ::-2])
