"""Direct unit tests for the flow action providers."""

from __future__ import annotations

import pytest

from repro.auth import AccessPolicy, AuthClient
from repro.auth.identity import (
    COMPUTE_SCOPE,
    SEARCH_INGEST_SCOPE,
    TRANSFER_SCOPE,
)
from repro.compute import BatchScheduler, ComputeEndpoint, ComputeService, constant_cost
from repro.errors import FlowError
from repro.flows import (
    ActionState,
    ComputeActionProvider,
    SearchIngestActionProvider,
    TransferActionProvider,
)
from repro.net import NetworkFabric, Topology
from repro.rng import RngRegistry
from repro.search import SearchService, make_record
from repro.sim import Environment
from repro.storage import VirtualFS
from repro.transfer import TransferEndpoint, TransferService
from repro.units import Gbps, MB


@pytest.fixture
def world():
    env = Environment()
    auth = AuthClient()
    alice = auth.register_identity("alice")
    token = auth.issue_token(
        alice, [TRANSFER_SCOPE, COMPUTE_SCOPE, SEARCH_INGEST_SCOPE], now=0.0
    )
    return env, auth, alice, token


def test_transfer_provider_lifecycle(world):
    env, auth, alice, token = world
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", Gbps(1))
    fabric = NetworkFabric(env, topo)
    svc = TransferService(env, fabric, auth, RngRegistry(0), latency_sigma=0.0)
    src, dst = VirtualFS("s"), VirtualFS("d")
    svc.register_endpoint(
        TransferEndpoint(name="s", host="a", vfs=src, policy=AccessPolicy().allow_write(alice))
    )
    svc.register_endpoint(
        TransferEndpoint(name="d", host="b", vfs=dst, policy=AccessPolicy().allow_write(alice))
    )
    src.create("/f", MB(125), created_at=0)

    provider = TransferActionProvider(svc, token)
    aid = provider.run(
        {
            "source_endpoint": "s",
            "source_path": "/f",
            "dest_endpoint": "d",
            "dest_path": "/out",
        }
    )
    assert provider.status(aid).state is ActionState.ACTIVE
    env.run()
    st = provider.status(aid)
    assert st.state is ActionState.SUCCEEDED
    assert st.result["bytes"] == MB(125)
    assert st.result["dest_path"] == "/out"
    assert st.active_seconds > 0.9


def test_compute_provider_reports_failure(world):
    env, auth, alice, token = world
    sched = BatchScheduler(env, n_nodes=1, queue_median_s=0, boot_median_s=0, rngs=RngRegistry(0))
    ep = ComputeEndpoint(env, "p", sched, env_cache_median_s=0, rngs=RngRegistry(0))
    svc = ComputeService(env, auth, RngRegistry(0), api_latency_s=0.0, latency_sigma=0.0)
    svc.register_endpoint(ep)

    def boom():
        raise ValueError("bad cube")

    fid = svc.register_function(boom, constant_cost(1.0))
    provider = ComputeActionProvider(svc, token)
    aid = provider.run({"endpoint": "p", "function_id": fid})
    env.run()
    st = provider.status(aid)
    assert st.state is ActionState.FAILED
    assert "bad cube" in st.error


def test_compute_provider_passes_args_kwargs(world):
    env, auth, alice, token = world
    sched = BatchScheduler(env, n_nodes=1, queue_median_s=0, boot_median_s=0, rngs=RngRegistry(0))
    ep = ComputeEndpoint(env, "p", sched, env_cache_median_s=0, rngs=RngRegistry(0))
    svc = ComputeService(env, auth, RngRegistry(0), api_latency_s=0.0, latency_sigma=0.0)
    svc.register_endpoint(ep)
    fid = svc.register_function(lambda a, b=0: a + b)
    provider = ComputeActionProvider(svc, token)
    aid = provider.run({"endpoint": "p", "function_id": fid, "args": [2], "kwargs": {"b": 40}})
    env.run()
    assert provider.status(aid).result["output"] == 42


def test_search_provider_ingest_and_unknown_action(world):
    env, auth, alice, token = world
    svc = SearchService(env, auth, RngRegistry(0), latency_sigma=0.0)
    idx = svc.create_index("portal")
    provider = SearchIngestActionProvider(env, svc, token)
    aid = provider.run(
        {
            "index": "portal",
            "subject": "s1",
            "content": make_record("d1", "title", ["alice"], 2023),
        }
    )
    env.run()
    st = provider.status(aid)
    assert st.state is ActionState.SUCCEEDED
    assert len(idx) == 1
    with pytest.raises(FlowError, match="unknown ingest action"):
        provider.status("ingest-999999")


def test_search_provider_reports_schema_failure(world):
    env, auth, alice, token = world
    svc = SearchService(env, auth, RngRegistry(0), latency_sigma=0.0)
    svc.create_index("portal")
    provider = SearchIngestActionProvider(env, svc, token)
    aid = provider.run({"index": "portal", "subject": "s1", "content": {"nope": 1}})
    env.run()
    st = provider.status(aid)
    assert st.state is ActionState.FAILED
    assert "SchemaError" in st.error
