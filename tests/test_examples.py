"""Smoke tests: the fast examples must run end to end.

(The heavier demos — full-scale tracking, quicklook at 1024 channels —
are exercised by the benchmarks instead.)
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "SUCCEEDED" in out
    assert "Published search record" in out


def test_portal_demo_runs(tmp_path, capsys):
    load_example("portal_demo").main(str(tmp_path))
    out = capsys.readouterr().out
    assert "public portal" in out
    assert (tmp_path / "public" / "index.html").exists()


def test_performance_campaign_runs(tmp_path, capsys):
    load_example("performance_campaign").main(str(tmp_path))
    out = capsys.readouterr().out
    assert "paper vs measured" in out
    assert (tmp_path / "fig4_hyperspectral.svg").exists()
    assert (tmp_path / "fig4_spatiotemporal.svg").exists()


def test_fault_tolerance_runs(capsys):
    mod = load_example("fault_tolerance")
    mod.faulty_network_campaign()
    mod.reboot_resume()
    out = capsys.readouterr().out
    assert "skipped by checkpoint" in out
