"""Tests for the kernel's split queue: lanes, calendar buckets, fast drain.

The optimized kernel keeps one *logical* total order —
``(time, priority, tiebreak_sign * seq)`` — but stores entries in three
physical structures (immediate lanes, per-timestamp timer buckets, and
an exotic heap).  These tests pin the seams between them: underflowing
delays, mid-drain scheduling and cancellation, exotic priorities mixed
into bucket drains, compaction while a bucket is being read, and the
fired-condition callback detach.
"""

from __future__ import annotations

import gc

import pytest

from repro.sim import Environment
from repro.sim.core import NORMAL, URGENT
from repro.sim.core import _defuse_stale


def _tag(order, name):
    return lambda _event, _o=order, _n=name: _o.append(_n)


def test_underflow_delay_routes_to_immediate_lane():
    """A positive delay too small to advance a large ``now`` fires at the
    current timestamp, ordered by sequence exactly like a zero delay."""
    for tiebreak, expected in (("fifo", ["a", "b", "c"]), ("lifo", ["c", "b", "a"])):
        env = Environment(initial_time=1e16, tiebreak=tiebreak)
        order = []
        env.timeout(0.0).callbacks.append(_tag(order, "a"))
        tiny = env.timeout(1e-3)  # 1e16 + 1e-3 == 1e16: underflows
        assert tiny.delay > 0 and env.now + tiny.delay == env.now
        tiny.callbacks.append(_tag(order, "b"))
        env.timeout(0.0).callbacks.append(_tag(order, "c"))
        env.run()
        assert order == expected, tiebreak


@pytest.mark.parametrize("tiebreak", ["fifo", "lifo"])
def test_repeated_timestamps_keep_seq_order(tiebreak):
    """Timer buckets group equal target times; within one bucket the
    tie-break governs, across buckets time does."""
    env = Environment(tiebreak=tiebreak)
    order = []
    layout = [(2.0, "a"), (1.0, "b"), (2.0, "c"), (1.0, "d"), (3.0, "e"), (1.0, "f")]
    for delay, name in layout:
        env.timeout(delay).callbacks.append(_tag(order, name))
    env.run()
    by_time = {1.0: ["b", "d", "f"], 2.0: ["a", "c"], 3.0: ["e"]}
    expected = []
    for t in sorted(by_time):
        expected += by_time[t] if tiebreak == "fifo" else by_time[t][::-1]
    assert order == expected


@pytest.mark.parametrize("tiebreak", ["fifo", "lifo"])
def test_mid_drain_zero_delay_preemption(tiebreak):
    """A zero-delay event scheduled from inside a bucket drain fires at
    the same timestamp: after remaining bucket entries under fifo,
    before them under lifo (newest-first)."""
    env = Environment(tiebreak=tiebreak)
    order = []

    def first(_event):
        order.append("first")
        env.timeout(0.0).callbacks.append(_tag(order, "injected"))

    a = env.timeout(1.0)
    b = env.timeout(1.0)
    (a if tiebreak == "fifo" else b).callbacks.append(first)
    (b if tiebreak == "fifo" else a).callbacks.append(_tag(order, "second"))
    env.run()
    if tiebreak == "fifo":
        assert order == ["first", "second", "injected"]
    else:
        assert order == ["first", "injected", "second"]


def test_mid_drain_exotic_priority_is_seen():
    """An exotic-priority event scheduled at ``now`` from inside a bucket
    drain still respects the priority order: NORMAL entries already in
    the bucket (priority 1) fire before the priority-2 straggler."""
    env = Environment()
    order = []
    straggler = env.event()

    def first(_event):
        order.append("first")
        straggler._ok = True
        straggler._value = None
        env.schedule(straggler, delay=0.25, priority=2)

    env.timeout(1.0).callbacks.append(first)
    env.timeout(1.0).callbacks.append(_tag(order, "second"))
    env.timeout(1.25).callbacks.append(_tag(order, "timer"))
    straggler.callbacks.append(_tag(order, "exotic"))
    env.run()
    # At t=1.25 the NORMAL timer (priority 1) precedes the exotic
    # (priority 2) even though the exotic was scheduled first.
    assert order == ["first", "second", "timer", "exotic"]


def test_urgent_lane_precedes_normal_at_same_tick():
    env = Environment()
    order = []
    ev = env.event()
    ev.callbacks.append(_tag(order, "urgent"))

    def proc(env):
        yield env.timeout(1.0)
        order.append("normal-a")
        ev.succeed()  # URGENT: jumps ahead of the pending same-tick timer
        yield env.timeout(0.0)
        order.append("normal-b")

    env.process(proc(env))
    env.timeout(1.0).callbacks.append(_tag(order, "bucket-peer"))
    env.run()
    # bucket-peer's timer was created before the process first ran, so
    # it leads the t=1 bucket; the succeed() then jumps the URGENT lane
    # ahead of the process's own zero-delay NORMAL continuation.
    assert order == ["bucket-peer", "normal-a", "urgent", "normal-b"]


@pytest.mark.parametrize("tiebreak", ["fifo", "lifo"])
def test_cancel_inside_current_bucket(tiebreak):
    """Cancelling a not-yet-drained entry of the *currently draining*
    bucket suppresses it."""
    env = Environment(tiebreak=tiebreak)
    order = []
    timers = [env.timeout(1.0) for _ in range(3)]
    victim = timers[2 if tiebreak == "fifo" else 0]

    def first(_event):
        order.append("first")
        env.cancel(victim)

    head = timers[0 if tiebreak == "fifo" else 2]
    head.callbacks.append(first)
    for i, t in enumerate(timers):
        if t is not head and t is not victim:
            t.callbacks.append(_tag(order, f"t{i}"))
    victim.callbacks.append(_tag(order, "victim"))
    env.run()
    assert order == ["first", "t1"]
    assert env.now == 1.0


def test_mass_cancel_compacts_every_structure():
    """Cancelling most of a large mixed population triggers compaction
    (including mid-drain) and the survivors still fire in order."""
    env = Environment()
    order = []
    keep = []
    doomed = []
    for i in range(200):
        t = env.timeout(1.0 + (i % 5))
        if i % 10 == 0:
            t.callbacks.append(_tag(order, i))
            keep.append(i)
        else:
            doomed.append(t)

    def killer(env):
        yield env.timeout(0.5)
        for t in doomed:
            env.cancel(t)
        # Compaction ran (possibly several times); at most a small
        # sub-threshold residue of tombstones may remain.
        assert env._cancelled_count <= 8

    env.process(killer(env))
    env.run()
    assert order == sorted(keep, key=lambda i: (1.0 + (i % 5), i))


def test_peek_skips_cancelled_bucket_heads():
    env = Environment()
    early = env.timeout(1.0)
    env.timeout(2.0)
    assert env.peek() == 1.0
    env.cancel(early)
    assert env.peek() == 2.0
    env.run()
    assert env.now == 2.0


def test_fired_condition_detaches_from_pending_timers():
    """Once an AnyOf fires, its long-lived constituents must not keep a
    reference to the condition (or its result dict) alive: the ``_check``
    callback is swapped for the module-level defuser."""
    env = Environment()

    def proc(env):
        short = env.timeout(1.0)
        long = env.timeout(1000.0)
        cond = env.any_of([short, long])
        yield cond
        assert short in cond.value
        # The pending timer now holds only the shared defuser — no bound
        # method pinning the condition.
        assert long.callbacks == [_defuse_stale]
        assert not any(getattr(cb, "__self__", None) is cond for cb in long.callbacks)

    env.process(proc(env))
    env.run(until=2.0)
    gc.collect()  # the detach must not have corrupted anything the
    env.run(until=1001.0)  # late timer still needs to drain cleanly
    assert env.now == 1001.0


def test_run_fast_disabled_by_trace_hook():
    """Attaching a trace hook must route through the instrumented step
    path — the hook sees every dispatch, in order."""
    env = Environment()
    seen = []
    env._trace_hook = lambda now, prio, event: seen.append(
        (now, prio, type(event).__name__)
    )

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(0.0)

    env.process(proc(env))
    env.run()
    assert [s for s in seen if s[2] == "Timeout"] == [
        (1.0, NORMAL, "Timeout"),
        (1.0, NORMAL, "Timeout"),
    ]
    assert seen[0][1] == URGENT  # process-init event


def test_exotic_priorities_total_order():
    """Priorities outside {URGENT, NORMAL} disable the fast drain but
    keep the exact (time, priority, seq) order."""
    env = Environment()
    order = []
    spec = [(1.0, 3, "late-exotic"), (1.0, 2, "exotic"), (2.0, 2, "next-tick")]
    for delay, prio, name in spec:
        ev = env.event()
        ev._ok = True
        ev._value = None
        ev.callbacks.append(_tag(order, name))
        env.schedule(ev, delay=delay, priority=prio)
    env.timeout(1.0).callbacks.append(_tag(order, "normal"))
    env.run()
    assert order == ["normal", "exotic", "late-exotic", "next-tick"]
