"""Tests for the streaming-ingest fast path (``repro.stream``).

Covers the credit-window backpressure bound, blackout → gap
renegotiation with exactly-once delivery to the drain, the in-flight
analysis kickoff, the ``ingest="stream"`` campaign mode, the
flow-facing action provider, and the head-to-head latency win over the
file pipeline.
"""

from __future__ import annotations

import pytest

from repro.core import run_campaign
from repro.errors import FlowError, StreamError
from repro.flows import ActionState
from repro.net import NetworkFabric, Topology
from repro.obs import (
    MetricsRegistry,
    derive_runs,
    derive_stream_sessions,
    format_ingest_comparison,
    ingest_comparison,
)
from repro.sim import Environment
from repro.stream import StreamPublisher, StreamReceiver, chunk_sizes
from repro.units import MB, Gbps


def _fabric_world():
    """A two-hop instrument → switch → compute-node fabric."""
    env = Environment()
    topo = Topology()
    topo.add_node("inst")
    topo.add_node("sw", kind="switch")
    topo.add_node("node")
    topo.add_link("inst", "sw", Gbps(1))
    topo.add_link("sw", "node", Gbps(10))
    return env, NetworkFabric(env, topo)


# -- chunking ----------------------------------------------------------------


def test_chunk_sizes_full_plus_remainder():
    assert chunk_sizes(MB(20), MB(8)) == [MB(8), MB(8), MB(4)]
    assert chunk_sizes(MB(16), MB(8)) == [MB(8), MB(8)]
    assert chunk_sizes(MB(3), MB(8)) == [MB(3)]


def test_chunk_sizes_rejects_non_positive():
    with pytest.raises(StreamError):
        chunk_sizes(0, MB(8))
    with pytest.raises(StreamError):
        chunk_sizes(MB(8), 0)


# -- backpressure ------------------------------------------------------------


def test_credit_window_bounds_in_flight():
    """A slow node-side drain must block the publisher at the window:
    chunks holding credits never exceed ``window``, and the window
    actually fills (the bound binds, it isn't vacuous)."""
    env, fabric = _fabric_world()
    # Drain at 4 MB/s: ~2 s per 8 MB chunk vs ~0.07 s on the wire.
    receiver = StreamReceiver(env, host="node", ingest_bytes_per_s=MB(4))
    publisher = StreamPublisher(
        env, fabric, receiver, src_host="inst", window=4, chunk_bytes=MB(8)
    )
    session = publisher.start("/acq.emd", MB(8) * 12)
    env.run()
    assert session.status == "DELIVERED"
    state = receiver._states[session.session_id]
    assert state.max_in_flight <= 4
    assert state.max_in_flight >= 3
    assert session.duplicates == 0
    assert state.drained == 12


def test_threshold_fires_before_full_delivery():
    """The in-flight analysis kickoff: ``threshold`` fires after the
    first N chunks drain, strictly before the last chunk lands."""
    env, fabric = _fabric_world()
    receiver = StreamReceiver(env, host="node", ingest_bytes_per_s=MB(40))
    publisher = StreamPublisher(
        env, fabric, receiver, src_host="inst",
        chunk_bytes=MB(8), threshold_chunks=3,
    )
    session = publisher.start("/acq.emd", MB(8) * 10)
    env.run()
    assert session.threshold.triggered
    assert session.threshold_at is not None
    assert session.threshold_at < session.last_chunk_at
    assert session.status == "DELIVERED"


def test_receiver_rejects_reopen_and_unknown_session():
    env, fabric = _fabric_world()
    receiver = StreamReceiver(env, host="node")
    publisher = StreamPublisher(env, fabric, receiver, src_host="inst")
    session = publisher.start("/acq.emd", MB(8))
    with pytest.raises(StreamError):
        receiver.open(session, 4)  # already open
    env.run()
    other = publisher.start("/acq2.emd", MB(8))
    del receiver._states[other.session_id]
    with pytest.raises(StreamError):
        receiver.ack(other)


# -- blackout renegotiation --------------------------------------------------


def test_blackout_renegotiation_delivers_exactly_once():
    """A link blackout mid-session stalls the in-flight chunk; the
    publisher withdraws it, renegotiates, and resumes from the
    receiver's ack — every frame reaches the drain exactly once."""
    env, fabric = _fabric_world()
    metrics = MetricsRegistry(env)
    receiver = StreamReceiver(env, host="node", metrics=metrics)
    publisher = StreamPublisher(
        env, fabric, receiver, src_host="inst",
        chunk_bytes=MB(8), chunk_timeout_s=0.5, metrics=metrics,
    )
    session = publisher.start("/acq.emd", MB(8) * 10)

    def blackout(env):
        yield env.timeout(0.1)
        fabric.set_link_health("inst", "sw", 0.0)
        yield env.timeout(3.0)
        fabric.set_link_health("inst", "sw", 1.0)

    env.process(blackout(env))
    env.run()
    assert session.status == "DELIVERED"
    assert session.renegotiations >= 1
    state = receiver._states[session.session_id]
    assert state.drained == 10
    assert state.next_seq == 10
    assert not state.pending
    # exactly once: the drain saw each of the 10 frames a single time
    assert metrics.counter("stream.chunks_delivered").value == 10
    assert metrics.counter("stream.renegotiations").value == session.renegotiations
    # receiver bookkeeping surfaces as obs metrics: renegotiation may
    # re-deliver frames (counted, refunded, never drained twice), but an
    # unverified clean wire produces no NAKs and no reorder gaps
    assert metrics.counter("stream.duplicates").value == session.duplicates
    assert metrics.counter("stream.naks").value == 0
    assert metrics.counter("stream.gaps").value == 0
    assert session.naks == 0 and session.gaps == 0


# -- chunk verification: NAK + selective retransmit --------------------------


class _ScriptedCorruptor:
    """Duck-typed chaos corruptor mangling scripted (seq, resend) pairs."""

    def __init__(self, faults):
        self.faults = dict(faults)  # (seq, resend) -> (kind, frac)

    def draw(self, session, seq, resend):
        fault = self.faults.get((seq, resend))
        if fault is None:
            return None
        kind, frac = fault
        return kind, frac, f"{session.session_id}:{seq}:{resend}"


class _RecordingLedger:
    """Duck-typed IntegrityLedger capturing detect/repair events."""

    def __init__(self):
        self.detects = []
        self.repairs = []

    def detect(self, mode, kind, path, seq=None, session_id=None):
        self.detects.append((mode, kind, seq))

    def repair(self, mode, kind, path, seq=None, session_id=None):
        self.repairs.append((mode, kind, seq))


def test_corrupt_chunk_nak_selective_retransmit():
    """A corrupt and a truncated chunk are each NAK'd once, re-sent
    selectively (only the bad sequence), repaired on the clean resend,
    and the stream still delivers every frame exactly once."""
    env, fabric = _fabric_world()
    metrics = MetricsRegistry(env)
    ledger = _RecordingLedger()
    receiver = StreamReceiver(env, host="node", metrics=metrics)
    receiver.ledger = ledger
    publisher = StreamPublisher(
        env, fabric, receiver, src_host="inst",
        chunk_bytes=MB(8), metrics=metrics,
    )
    publisher.corruptor = _ScriptedCorruptor({
        (3, 0): ("chunk_corrupt", 1.0),
        (5, 0): ("chunk_truncate", 0.5),
    })
    session = publisher.start("/acq.emd", MB(8) * 10, digest="d" * 32)
    env.run()
    assert session.status == "DELIVERED"
    assert session.naks == 2 and session.retransmits == 2
    assert session.failed is not None and not session.failed.triggered
    state = receiver._states[session.session_id]
    assert state.drained == 10 and not state.nak_seqs
    assert metrics.counter("stream.naks").value == 2
    assert metrics.counter("stream.retransmits").value == 2
    # exactly once despite the resends
    assert metrics.counter("stream.chunks_delivered").value == 10
    assert metrics.counter("stream.duplicates").value == 0
    # the ledger saw each failure kind and each retransmit repair
    assert ledger.detects == [
        ("stream", "corrupt", 3), ("stream", "truncated", 5)
    ]
    assert ledger.repairs == [
        ("stream", "retransmit", 3), ("stream", "retransmit", 5)
    ]


def test_retransmit_cap_fails_session():
    """A source that can never produce a clean chunk exhausts the
    per-sequence retransmit budget: the session FAILs, fires its
    ``failed`` event, and the drain never completes."""
    env, fabric = _fabric_world()
    metrics = MetricsRegistry(env)
    receiver = StreamReceiver(env, host="node", metrics=metrics)
    publisher = StreamPublisher(
        env, fabric, receiver, src_host="inst",
        chunk_bytes=MB(8), max_retransmits=2, metrics=metrics,
    )
    publisher.corruptor = _ScriptedCorruptor({
        (2, r): ("chunk_corrupt", 1.0) for r in range(10)
    })
    session = publisher.start("/acq.emd", MB(8) * 6, digest="d" * 32)
    env.run()
    assert session.status == "FAILED"
    assert "after 2 retransmits" in session.error
    assert session.failed is not None and session.failed.triggered
    # initial send + 2 allowed retransmits, all NAK'd
    assert session.naks == 3 and session.retransmits == 2
    assert metrics.counter("stream.naks").value == 3
    state = receiver._states[session.session_id]
    assert state.next_seq == 2 and state.drained == 2


def test_verified_clean_stream_never_naks():
    """Arming digests without a corruptor is pure verification: every
    chunk passes, no NAKs, no failure event."""
    env, fabric = _fabric_world()
    receiver = StreamReceiver(env, host="node")
    publisher = StreamPublisher(
        env, fabric, receiver, src_host="inst", chunk_bytes=MB(8)
    )
    session = publisher.start("/acq.emd", MB(8) * 5, digest="d" * 32)
    env.run()
    assert session.status == "DELIVERED"
    assert session.naks == 0 and session.retransmits == 0
    assert not session.failed.triggered


# -- campaign integration ----------------------------------------------------


def test_stream_campaign_publishes_sessions():
    res = run_campaign(
        "hyperspectral", duration_s=600.0, seed=3, obs=True, ingest="stream"
    )
    assert res.ingest == "stream"
    published = res.app.published_sessions
    assert published
    for s in published:
        # the paper-motivated ordering: analysis starts on partial data,
        # publication waits for analysis + full delivery
        assert s.threshold_at <= s.analysis_started_at
        assert s.analysis_done_at <= s.published_at
        assert s.detection_to_analysis_s > 0
    # the flow-run facade is empty and Table 1 refuses stream mode
    assert res.runs == [] and res.completed_runs == []
    assert res.stream_sessions == res.app.sessions
    with pytest.raises(ValueError):
        res.table1()


def test_stream_beats_file_on_detection_to_analysis():
    """The acceptance criterion: streaming shows lower
    detection-to-analysis latency than the file pipeline."""
    rf = run_campaign("hyperspectral", duration_s=600.0, seed=1, obs=True)
    rs = run_campaign(
        "hyperspectral", duration_s=600.0, seed=1, obs=True, ingest="stream"
    )
    runs = derive_runs(rf.testbed.obs.tracer.spans)
    sessions = derive_stream_sessions(rs.testbed.obs.tracer.spans)
    assert runs and sessions
    cmp = ingest_comparison(runs, sessions)
    assert (
        cmp["stream"]["detection_to_analysis_s"]["mean"]
        < cmp["file"]["detection_to_analysis_s"]["mean"]
    )
    assert cmp["stream"]["end_to_end_s"]["p50"] < cmp["file"]["end_to_end_s"]["p50"]
    table = format_ingest_comparison(cmp)
    assert "file" in table and "stream" in table


def test_stream_session_traces_stitch_by_session_id():
    res = run_campaign(
        "hyperspectral", duration_s=600.0, seed=2, obs=True, ingest="stream"
    )
    sessions = derive_stream_sessions(res.testbed.obs.tracer.spans)
    published = [t for t in sessions if t.status == "PUBLISHED"]
    assert published
    for t in published:
        assert t.deliver_start is not None  # publisher span stitched
        assert t.analyze_start is not None and t.publish_start is not None
        assert t.analyze_start <= t.publish_start
        assert t.end_to_end_seconds > 0


def test_unknown_ingest_mode_rejected():
    with pytest.raises(ValueError):
        run_campaign("hyperspectral", duration_s=10.0, ingest="carrier-pigeon")


def test_stream_mode_rejects_compression():
    with pytest.raises(ValueError):
        run_campaign(
            "hyperspectral", duration_s=10.0, ingest="stream", compression=object()
        )


def test_chaos_shares_transfer_gate_with_publisher():
    from repro.chaos import SCENARIOS

    res = run_campaign(
        "hyperspectral", duration_s=60.0, seed=1,
        ingest="stream", chaos=SCENARIOS["outage"],
    )
    assert res.app.publisher.gate is res.chaos.gates["transfer"]


# -- action provider ---------------------------------------------------------


def test_stream_provider_run_status_lifecycle():
    res = run_campaign(
        "hyperspectral", duration_s=300.0, seed=5, ingest="stream"
    )
    tb = res.testbed
    provider = tb.flows.provider("stream_ingest")
    # outside the watched prefix so only the provider triggers ingest;
    # borrow real acquisition metadata so the analysis descriptor builds
    meta = res.app.sessions[0].virtual.metadata
    tb.user_fs.create(
        "/manual/m.emd", MB(16), created_at=tb.env.now, metadata=meta
    )
    session_id = provider.run({"path": "/manual/m.emd"})
    assert provider.status(session_id).state is ActionState.ACTIVE
    tb.env.run(until=res.duration_s + 300.0)
    status = provider.status(session_id)
    assert status.state is ActionState.SUCCEEDED
    assert status.result["session_id"] == session_id
    assert status.result["chunks"] >= 1
    assert status.active_seconds > 0
    # a second run of the same path dedups through the checkpoint
    with pytest.raises(FlowError):
        provider.run({"path": "/manual/m.emd"})


def test_stream_provider_unknown_session_and_missing_file():
    res = run_campaign(
        "hyperspectral", duration_s=60.0, seed=5, ingest="stream"
    )
    provider = res.testbed.flows.provider("stream_ingest")
    with pytest.raises(FlowError):
        provider.status("strm-999999")
    from repro.errors import EndpointError

    with pytest.raises(EndpointError):
        provider.run({"path": "/never/was.emd"})
