#!/usr/bin/env python
"""Quickstart: one EMD file through the full Transfer → Analyze → Publish flow.

Builds the Argonne-like testbed, stages a single 91 MB hyperspectral file
on the PicoProbe user machine, lets the watcher-triggered app launch the
Gladier flow, and prints the per-step timing breakdown plus the published
search record.

Run:  python examples/quickstart.py
"""

from repro.core import (
    FlowTriggerApp,
    analyze_virtual_hyperspectral,
    hyperspectral_cost_model,
    picoprobe_flow,
)
from repro.instrument import HYPERSPECTRAL_USE_CASE
from repro.testbed import DEFAULT_CALIBRATION, build_testbed
from repro.units import format_bytes, format_duration
from repro.watcher import SimObserver


def main() -> None:
    # 1. The world: network, services, instrument — one constructor.
    tb = build_testbed(seed=42)

    # 2. Register the combined analysis function (image processing +
    #    metadata extraction in one call, as the paper does).
    function_id = tb.compute.register_function(
        analyze_virtual_hyperspectral,
        hyperspectral_cost_model(DEFAULT_CALIBRATION, tb.rngs),
        name="hyperspectral-analysis",
    )

    # 3. Compose the flow from Gladier tools and start the trigger app.
    definition = picoprobe_flow(tb.gladier, "picoprobe-hyperspectral")
    app = FlowTriggerApp(tb, definition, function_id)
    observer = SimObserver(tb.user_fs, prefix="/transfer")
    app.attach(observer)

    # 4. The instrument writes one EMD file into the transfer directory.
    uc = HYPERSPECTRAL_USE_CASE
    md = tb.instrument.stamp_metadata(
        uc.signal_type, uc.shape, uc.dtype, uc.sample, acquired_at=0.0
    )
    tb.user_fs.create(
        "/transfer/quickstart.emd",
        size_bytes=uc.file_size_bytes,
        created_at=0.0,
        metadata=md,
    )

    # 5. Run the simulation until the flow completes.
    run = app.runs[0]
    tb.env.run(until=run.completed)

    print(f"flow {run.run_id}: {run.status.value} in {format_duration(run.runtime_seconds)}")
    print(f"  file size      : {format_bytes(uc.file_size_bytes)}")
    for step in run.steps:
        print(
            f"  {step.name:<15s} active {step.active_seconds:7.2f}s   "
            f"overhead {step.overhead_seconds:6.2f}s   polls {step.polls}"
        )
    print(
        f"  total          active {run.active_seconds:7.2f}s   "
        f"overhead {run.overhead_seconds:6.2f}s ({100 * run.overhead_fraction:.1f}%)"
    )

    print("\nEagle now holds:")
    for f in tb.eagle_fs:
        print(f"  {f.path}  ({format_bytes(f.size_bytes)})")

    print("\nPublished search record:")
    hit = tb.portal_index.query(q="hyperspectral").hits[0]
    print(f"  subject : {hit.subject}")
    print(f"  title   : {hit.content['title']}")
    print(f"  created : {hit.content['dates']['created']}")
    print(f"  location: {hit.content['data_location']}")


if __name__ == "__main__":
    main()
