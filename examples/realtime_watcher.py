#!/usr/bin/env python
"""Real-filesystem operation: watch a directory, analyze real EMD files.

Everything in this example is *real*, no simulation: the instrument
writes genuine EMD files into a watched directory, the cross-platform
polling observer (the watchdog stand-in) detects them, the checkpoint
store guards against reprocessing, and each file goes through the real
hyperspectral analysis into a search index + portal — the operational
mode the paper's user machines run in, minus the wide-area hop.

Run:  python examples/realtime_watcher.py [output_dir]
"""

import os
import sys
import time

from repro.core import analyze_hyperspectral_file
from repro.emd import write_emd
from repro.instrument import PicoProbe
from repro.portal import Portal
from repro.rng import RngRegistry
from repro.search import SearchIndex
from repro.watcher import CheckpointStore, PollingObserver


def main(out_dir: str = "watcher_out") -> None:
    staging = os.path.join(out_dir, "transfer")
    results = os.path.join(out_dir, "results")
    os.makedirs(staging, exist_ok=True)
    os.makedirs(results, exist_ok=True)

    observer = PollingObserver(staging, suffixes=(".emd",))
    checkpoint = CheckpointStore(os.path.join(out_dir, "checkpoint.json"))
    index = SearchIndex("realtime")
    probe = PicoProbe(RngRegistry(seed=int(time.time()) % 10000), operator="live-user")

    processed = []

    def on_created(event):
        checksum = f"{event.size_bytes}:{event.mtime}"
        if checkpoint.is_processed(event.path, checksum):
            print(f"  skip (checkpointed): {event.path}")
            return
        t0 = time.perf_counter()
        record = analyze_hyperspectral_file(event.path, results)
        dt = time.perf_counter() - t0
        subject = record["experiment"]["acquisition_id"]
        index.ingest(subject, record)
        checkpoint.mark_processed(event.path, checksum)
        processed.append(subject)
        print(f"  analyzed {os.path.basename(event.path)} in {dt:.1f}s "
              f"-> elements {', '.join(record['detected_elements'])}")

    observer.add_handler(on_created)

    print(f"watching {staging} — acquiring 3 hyperspectral maps...")
    for i in range(3):
        signal, _ = probe.acquire_hyperspectral(shape=(96, 96), n_channels=512)
        path = os.path.join(staging, f"{signal.metadata.acquisition_id}.emd")
        write_emd(path, signal, compression="zlib")
        print(f"instrument wrote {os.path.basename(path)} "
              f"({os.path.getsize(path) / 1e6:.1f} MB)")
        observer.poll_once()  # the watcher's polling tick

    # A second poll finds nothing new; re-announcing files is also safe.
    assert observer.poll_once() == []
    print(f"\nprocessed {len(processed)} files; checkpoint holds {len(checkpoint)}")

    portal = Portal(index, title="Live PicoProbe Portal")
    pages = portal.build(os.path.join(out_dir, "portal"))
    print(f"portal: {pages[0]}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "watcher_out")
