#!/usr/bin/env python
"""Closing the loop: the Fig. 1 vision end to end.

The paper's high-level picture (Fig. 1): data streams off the
instrument, flows analyze it at ALCF, ML tracks features, and the
results feed *back* — alerting the operator to calibration problems and
synthesizing an actionable summary for the domain scientist.  This
example runs a campaign, simulates a mid-campaign calibration problem
(the beam defocuses and nanoparticle counts collapse in one movie),
and shows the feedback layer catching it.

Run:  python examples/closing_the_loop.py
"""

import numpy as np

from repro.analysis import BlobDetector, count_series
from repro.core import (
    actionable_summary,
    detect_drift,
    run_campaign,
    scan_for_alerts,
)
from repro.instrument import MovieSpec, PicoProbe
from repro.rng import RngRegistry


def simulate_count_series() -> dict:
    """Per-movie particle-count series: one healthy, one degrading."""
    probe = PicoProbe(RngRegistry(seed=11))
    detector = BlobDetector()

    spec = MovieSpec(n_frames=60, shape=(192, 192), n_particles=6, radius_range=(5, 9))
    healthy, _ = probe.acquire_spatiotemporal(spec)
    healthy_counts = count_series(
        detector.detect_movie(healthy.data), min_confidence=0.8
    )

    # The "calibration problem": halfway through, the beam defocuses —
    # particle contrast washes out and detections vanish.
    degraded_movie = healthy.data.copy()
    half = spec.n_frames // 2
    background = degraded_movie[:half].mean()
    degraded_movie[half:] = (
        0.02 * (degraded_movie[half:] - background) + background
    )
    degraded_counts = count_series(
        detector.detect_movie(degraded_movie), min_confidence=0.8
    )
    return {
        "movie-healthy": [int(c) for c in healthy_counts],
        "movie-defocused": [int(c) for c in degraded_counts],
    }


def main() -> None:
    print("running a 30-minute hyperspectral campaign...")
    res = run_campaign("hyperspectral", duration_s=1800, seed=1)
    print(f"{len(res.completed_runs)} flows completed\n")

    print("analyzing per-movie particle-count series for calibration drift:")
    series = simulate_count_series()
    for subject, counts in series.items():
        verdict = detect_drift(counts)
        flag = "OK " if verdict.ok else "!! "
        print(f"  {flag}{subject}: {verdict.detail}")

    alerts = scan_for_alerts(res.runs, count_series_by_subject=series)
    print(f"\noperator alerts raised: {len(alerts)}")
    for a in alerts:
        print(f"  [{a.severity}] {a.source}: {a.message}")

    summary = actionable_summary(
        res.runs, bytes_per_run=res.use_case.file_size_bytes, alerts=alerts
    )
    print("\nactionable summary for the domain scientist:")
    print(f"  {summary['headline']}")
    print(f"  bottleneck      : {summary['bottleneck']}")
    print(f"  median overhead : {summary['median_overhead_pct']:.0f}%")
    print(f"  recommendation  : {summary['recommendation']}")


if __name__ == "__main__":
    main()
