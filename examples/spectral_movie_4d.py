#!/usr/bin/env python
"""The 4-D future-work use case, with and without compression.

Sec. 3.2: "an additional hyperspectral dimension could be added which
would result in a 4-dimensional tensor, vastly increasing the data
volume of each file — we leave this use case to future work."  Sec. 5
names data compression as a mitigation.  This example runs both: the
9.6 GB spectral-movie campaign raw, then with a zstd-like codec
compressing on the user machine before transfer.

Run:  python examples/spectral_movie_4d.py
"""

import numpy as np

from repro.core import run_campaign
from repro.core.extensions import SPECTRAL_MOVIE_USE_CASE, ZSTD_LIKE
from repro.core.tools import TRANSFER_STATE
from repro.units import format_bytes


def describe(label: str, res) -> None:
    runs = res.completed_runs
    if not runs:
        print(f"{label}: no flows completed within the hour")
        return
    mean_rt = np.mean([r.runtime_seconds for r in runs])
    xfer = np.median([r.step(TRANSFER_STATE).active_seconds for r in runs])
    moved = sum(r.step(TRANSFER_STATE).result["bytes"] for r in runs)
    print(
        f"{label}: {len(runs)} flows/h, mean runtime {mean_rt:.0f}s, "
        f"median transfer {xfer:.0f}s, {format_bytes(moved)} on the wire"
    )


def main() -> None:
    uc = SPECTRAL_MOVIE_USE_CASE
    print(
        f"use case: {uc.name} — shape {uc.shape}, "
        f"{format_bytes(uc.file_size_bytes)} per file, one every {uc.period_s:.0f}s\n"
    )
    raw = run_campaign("spectral-movie", seed=3)
    describe("raw          ", raw)
    comp = run_campaign("spectral-movie", seed=3, compression=ZSTD_LIKE)
    describe(f"{ZSTD_LIKE.name} ({ZSTD_LIKE.ratio}x)", comp)

    print(
        "\nthe 4-D regime makes the transfer bottleneck existential: without "
        "compression,\nthe instrument outruns the site uplink at a tiny "
        "fraction of the future 65 GB/s\ndetector rates the paper anticipates."
    )


if __name__ == "__main__":
    main()
