#!/usr/bin/env python
"""Build a browsable FAIR portal from a mixed campaign.

Runs a short mixed workload (both use cases interleaved through the
flows), then builds the static DGPF-style portal over the resulting
search index: a faceted experiment listing searchable by date, with one
page per record.  Also demonstrates visibility ACLs: a private record is
only rendered for its owner.

Run:  python examples/portal_demo.py [output_dir]
Then open ``<output_dir>/index.html`` in a browser.
"""

import os
import sys

from repro.core import run_campaign
from repro.portal import Portal
from repro.search import FieldFilter, make_record


def main(out_dir: str = "portal_out") -> None:
    os.makedirs(out_dir, exist_ok=True)

    print("running a 20-minute hyperspectral campaign...")
    res = run_campaign("hyperspectral", duration_s=1200, seed=6)
    tb = res.testbed
    index = tb.portal_index
    print(f"{len(res.completed_runs)} flows completed; index holds {len(index)} records")

    # Add one private record to show visibility filtering.
    index.ingest(
        "private-cal-scan",
        make_record(
            "picoprobe:cal-001",
            "Private calibration scan",
            [tb.operator.username],
            2023,
            dates={"created": "2023-06-01T09:00:00"},
            experiment={"signal_type": "hyperspectral", "acquisition_id": "cal-001"},
        ),
        visible_to=(tb.operator.urn,),
    )

    # Date-windowed query (the portal's search-by-experiment-time).
    first_half = index.query(
        filters=[
            FieldFilter(
                "dates.created",
                "between",
                ("2023-06-01T00:00:00", "2023-06-01T00:10:00"),
            )
        ],
        limit=100,
    )
    print(f"records in the campaign's first 10 minutes: {first_half.total_matched}")

    portal = Portal(index, title="Dynamic PicoProbe Data Portal")
    anon_dir = os.path.join(out_dir, "public")
    auth_dir = os.path.join(out_dir, "operator")
    n_anon = len(portal.build(anon_dir))
    n_auth = len(portal.build(auth_dir, identity=tb.operator))
    print(f"public portal : {n_anon} pages under {anon_dir} (private record hidden)")
    print(f"operator view : {n_auth} pages under {auth_dir} (private record visible)")
    print(f"open {os.path.join(anon_dir, 'index.html')} in a browser")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "portal_out")
