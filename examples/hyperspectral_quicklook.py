#!/usr/bin/env python
"""Fig. 2 content pipeline on real data: acquire → analyze → portal page.

Acquires a (laptop-scale) hyperspectral cube of the polyamide-film
phantom from the simulated PicoProbe, writes a real EMD file, runs the
real Sec. 3.1 analysis (intensity image, sum spectrum, element
identification, HyperSpy-style metadata extraction), publishes the
record, and builds the DGPF-style portal page — the full Fig. 2 panel.

Run:  python examples/hyperspectral_quicklook.py [output_dir]
Artifacts land in ``output_dir`` (default ``./quicklook_out``).
"""

import os
import sys

from repro.analysis import identify_elements, sum_spectrum
from repro.core import analyze_hyperspectral_file
from repro.emd import write_emd
from repro.instrument import PicoProbe
from repro.portal import Portal
from repro.rng import RngRegistry
from repro.search import SearchIndex


def main(out_dir: str = "quicklook_out") -> None:
    os.makedirs(out_dir, exist_ok=True)

    # 1. Acquire: 128x128 map with 1024 energy channels of the polyamide
    #    membrane treated to capture heavy metals (Au/Pb decorate it).
    probe = PicoProbe(RngRegistry(seed=7), operator="quicklook-user")
    probe.set_beam_energy(300.0)
    probe.move_stage(x_um=12.5, y_um=-3.2, alpha_deg=2.0)
    signal, particles = probe.acquire_hyperspectral(shape=(128, 128), n_channels=1024)
    print(f"acquired {signal.metadata.acquisition_id}: shape {signal.data.shape}, "
          f"{len(particles)} heavy-metal particles in the phantom")

    emd_path = os.path.join(out_dir, f"{signal.metadata.acquisition_id}.emd")
    write_emd(emd_path, signal, compression="zlib")
    print(f"wrote {emd_path} ({os.path.getsize(emd_path) / 1e6:.1f} MB on disk)")

    # 2. Analyze: the real combined function (reductions + plots + metadata).
    record = analyze_hyperspectral_file(emd_path, out_dir)
    print(f"detected elements: {', '.join(record['detected_elements'])}")

    hits = identify_elements(
        sum_spectrum(signal.data), signal.dims[2].values
    )
    print("strongest characteristic lines:")
    for h in hits[:5]:
        print(
            f"  {h.element:>2s} {h.line_label:<6s} line {h.line_energy_ev:7.1f} eV "
            f"matched peak at {h.peak_energy_ev:7.1f} eV"
        )

    # 3. Publish + portal: the Fig. 2 page (A: image, B: spectrum, C: table).
    index = SearchIndex("quicklook")
    index.ingest(record["experiment"]["acquisition_id"], record)
    portal = Portal(index, title="PicoProbe Quicklook Portal")
    written = portal.build(os.path.join(out_dir, "portal"))
    print("portal pages:")
    for p in written:
        print(f"  {p}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "quicklook_out")
