#!/usr/bin/env python
"""The Sec. 3.3 performance evaluation: Table 1 + Fig. 4, regenerated.

Runs both independent 1-hour campaigns (hyperspectral: 91 MB files every
30 s; spatiotemporal: 1200 MB files every 120 s) on the calibrated
testbed and prints the paper's Table 1 next to the measured values, then
writes both Fig. 4 panels as SVG.

Run:  python examples/performance_campaign.py [output_dir]
"""

import os
import sys

from repro.core import fig4_svg, render_table1, run_campaign

#: Table 1 as printed in the paper, for side-by-side comparison.
PAPER_TABLE1 = {
    "hyperspectral": {
        "Start period (s)": 30,
        "Transfer volume (MB)": 91,
        "Total data transfer (GB)": 6.42,
        "Min flow runtime (s)": 29,
        "Mean flow runtime (s)": 47,
        "Max flow runtime (s)": 181,
        "Median overhead (s)": 19.5,
        "Median overhead (%)": 49.2,
        "Total flow runs": 72,
    },
    "spatiotemporal": {
        "Start period (s)": 120,
        "Transfer volume (MB)": 1200,
        "Total data transfer (GB)": 21.72,
        "Min flow runtime (s)": 195,
        "Mean flow runtime (s)": 224,
        "Max flow runtime (s)": 274,
        "Median overhead (s)": 45.2,
        "Median overhead (%)": 21.1,
        "Total flow runs": 18,
    },
}


def main(out_dir: str = "campaign_out") -> None:
    os.makedirs(out_dir, exist_ok=True)

    print("running the two independent 1-hour campaigns (simulated)...")
    hyper = run_campaign("hyperspectral", seed=1)
    spatio = run_campaign("spatiotemporal", seed=2)

    rows = [hyper.table1(), spatio.table1()]
    print("\n=== Table 1 (measured) ===")
    print(render_table1(rows))

    print("\n=== paper vs measured ===")
    for row in rows:
        paper = PAPER_TABLE1[row.use_case]
        measured = row.as_dict()
        print(f"\n{row.use_case}:")
        for metric, pv in paper.items():
            print(f"  {metric:<26s} paper {pv:>8}   measured {measured[metric]:>8}")

    for name, res in (("hyperspectral", hyper), ("spatiotemporal", spatio)):
        svg = fig4_svg(res.runs, f"Itemized runtime: {name} flow")
        path = os.path.join(out_dir, f"fig4_{name}.svg")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(svg)
        print(f"\nFig. 4 panel written: {path}")

    cold = [r for r in hyper.completed_runs if any(
        s.result.get("cold_start") for s in r.steps if s.name == "AnalyzeData"
    )]
    print(f"\ncold-start flows (hyperspectral): {len(cold)} "
          f"(the paper's max runtimes: 'associated with the first flows')")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "campaign_out")
