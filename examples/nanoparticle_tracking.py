#!/usr/bin/env python
"""Fig. 3 content pipeline: movie → hand labels → fine-tune → track.

Reproduces the Sec. 3.2 ML pipeline at laptop scale: acquire a
spatiotemporal movie of gold nanoparticles on carbon, synthesize the
Roboflow hand-labeling pass (every Nth frame), "fine-tune" the detector
on the 9/3/1-style split, report mAP50-95 (paper: 0.791 train / 0.801
val), run per-frame inference, track particles across frames, and write
the annotated video plus a per-frame count chart.

Run:  python examples/nanoparticle_tracking.py [output_dir]
"""

import os
import sys

import numpy as np

from repro.analysis import (
    BlobDetector,
    IouTracker,
    LabelingSpec,
    annotate_video,
    calibrate,
    count_series,
    hand_label,
    map_range,
    movie_to_uint8,
    split_9_3_1,
)
from repro.instrument import MovieSpec, PicoProbe
from repro.rng import RngRegistry
from repro.viz import line_chart


def main(out_dir: str = "tracking_out") -> None:
    os.makedirs(out_dir, exist_ok=True)

    # 1. Acquire a movie (scaled down from the paper's 600x640x640 so the
    #    example runs in seconds; the bench runs the full-size version).
    spec = MovieSpec(n_frames=120, shape=(320, 320), n_particles=6, radius_range=(5, 11))
    probe = PicoProbe(RngRegistry(seed=3), operator="tracking-user")
    signal, truth = probe.acquire_spatiotemporal(spec)
    movie = signal.data
    print(f"acquired {signal.metadata.acquisition_id}: {movie.shape} float64 "
          f"({movie.nbytes / 1e6:.0f} MB in memory)")

    # 2. Hand-label every 10th frame (the Roboflow pass) and split.
    labeled = hand_label(truth, LabelingSpec(every_nth=10), rng=np.random.default_rng(1))
    train, val, test = split_9_3_1(labeled)
    print(f"labeled {len(labeled)} frames -> {len(train)} train / {len(val)} val / {len(test)} test")

    # 3. "Fine-tune": calibrate detector parameters on the training split.
    params, m_train = calibrate(
        [movie[lf.frame_index] for lf in train], [lf.boxes for lf in train]
    )
    detector = BlobDetector(params)
    m_val = map_range(
        [(detector.detect(movie[lf.frame_index]), list(lf.boxes)) for lf in val]
    )
    print(f"mAP50-95: train {m_train:.3f} / val {m_val:.3f}  (paper: 0.791 / 0.801)")

    # 4. Inference on every frame; convert fp64 -> uint8 (the paper's
    #    costly cast); annotate and track at the calibrated operating
    #    confidence.
    conf = params.operating_confidence
    detections = detector.detect_movie(movie)
    movie_u8 = movie_to_uint8(movie)
    video_path = os.path.join(out_dir, "annotated.mpng")
    annotate_video(movie_u8, detections, video_path, confidence_threshold=conf)
    print(f"annotated video: {video_path} (confidence cut {conf})")

    tracks = IouTracker(min_confidence=conf).run(detections)
    long_tracks = [t for t in tracks if t.length >= spec.n_frames // 2]
    disp = np.mean([t.displacement() for t in long_tracks]) if long_tracks else 0.0
    print(f"tracks: {len(tracks)} total, {len(long_tracks)} long-lived; "
          f"mean displacement {disp:.1f} px over the movie")

    # 5. The Fig. 3 characterization signal: particle count vs time.
    counts = count_series(detections, min_confidence=conf)
    chart = line_chart(
        [("particles", list(range(len(counts))), [float(c) for c in counts])],
        title="Detected nanoparticles per frame",
        xlabel="frame",
        ylabel="count",
        show_legend=False,
    )
    chart_path = os.path.join(out_dir, "counts.svg")
    with open(chart_path, "w", encoding="utf-8") as fh:
        fh.write(chart)
    print(f"count chart: {chart_path} "
          f"(truth {spec.n_particles}, detected median {int(np.median(counts))})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tracking_out")
