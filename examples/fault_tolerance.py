#!/usr/bin/env python
"""Fault tolerance and resume: retries, checksums, and checkpointing.

Two vignettes the paper's infrastructure claims (Sec. 2.2.1) but never
shows in numbers:

1. **Faulty network** — a campaign with 25% transient-fault probability
   per transfer attempt: every flow still completes (Globus-style retry +
   checksum verification), at the cost of longer transfer times.
2. **User-machine reboot** — the trigger app restarts mid-campaign with
   the same checkpoint store; already-processed files do not re-trigger
   flows ("avoid undesired flow repeats").

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.core import (
    FlowTriggerApp,
    analyze_virtual_hyperspectral,
    hyperspectral_cost_model,
    picoprobe_flow,
    run_campaign,
)
from repro.instrument import HYPERSPECTRAL_USE_CASE
from repro.testbed import DEFAULT_CALIBRATION, build_testbed
from repro.transfer import FaultPlan
from repro.watcher import CheckpointStore, SimObserver


def faulty_network_campaign() -> None:
    print("=== vignette 1: 25% transient transfer faults ===")
    clean = run_campaign("hyperspectral", duration_s=1200, seed=4)
    faulty = run_campaign(
        "hyperspectral",
        duration_s=1200,
        seed=4,
        fault_plan=FaultPlan(transient_prob=0.25, max_attempts=6),
    )
    c_runs, f_runs = clean.completed_runs, faulty.completed_runs
    attempts = [
        r.step("TransferData").result.get("attempts", 1) for r in f_runs
    ]
    print(f"clean : {len(c_runs)} flows, mean runtime "
          f"{np.mean([r.runtime_seconds for r in c_runs]):.1f}s")
    print(f"faulty: {len(f_runs)} flows, mean runtime "
          f"{np.mean([r.runtime_seconds for r in f_runs]):.1f}s, "
          f"{sum(a > 1 for a in attempts)} flows needed transfer retries "
          f"(max {max(attempts)} attempts)")
    assert all(r.status.value == "SUCCEEDED" for r in f_runs)
    print("every faulty-campaign flow still SUCCEEDED (retry + checksum)\n")


def reboot_resume() -> None:
    print("=== vignette 2: reboot + checkpoint resume ===")
    tb = build_testbed(seed=9)
    fid = tb.compute.register_function(
        analyze_virtual_hyperspectral,
        hyperspectral_cost_model(DEFAULT_CALIBRATION, tb.rngs),
    )
    definition = picoprobe_flow(tb.gladier, "picoprobe-hyperspectral")
    checkpoint = CheckpointStore()  # one store across the "reboot"

    # Session 1: three files arrive, flows start.
    app1 = FlowTriggerApp(tb, definition, fid, checkpoint=checkpoint)
    obs1 = SimObserver(tb.user_fs, prefix="/transfer")
    app1.attach(obs1)
    uc = HYPERSPECTRAL_USE_CASE
    files = []
    for i in range(3):
        md = tb.instrument.stamp_metadata(
            uc.signal_type, uc.shape, uc.dtype, uc.sample, acquired_at=float(i)
        )
        files.append(
            tb.user_fs.create(
                f"/transfer/run_{i}.emd", uc.file_size_bytes,
                created_at=float(i), metadata=md,
            )
        )
    print(f"session 1 started {len(app1.runs)} flows")

    # The machine "reboots": the observer dies, a fresh app attaches with
    # the same checkpoint store, and the staged files are re-scanned
    # (re-announced) on startup.
    obs1.stop()
    app2 = FlowTriggerApp(tb, definition, fid, checkpoint=checkpoint)
    obs2 = SimObserver(tb.user_fs, prefix="/transfer")
    app2.attach(obs2)
    for f in files:  # the rescan re-creates events for existing files
        tb.user_fs.create(
            f.path, f.size_bytes, created_at=10.0, checksum=f.checksum,
            metadata=f.metadata, overwrite=True,
        )
    print(f"session 2 re-announced {len(files)} files -> "
          f"{len(app2.runs)} new flows, {app2.skipped} skipped by checkpoint")
    assert len(app2.runs) == 0 and app2.skipped == 3

    # A genuinely new acquisition still triggers.
    md = tb.instrument.stamp_metadata(
        uc.signal_type, uc.shape, uc.dtype, uc.sample, acquired_at=11.0
    )
    tb.user_fs.create("/transfer/run_new.emd", uc.file_size_bytes, created_at=11.0, metadata=md)
    print(f"new file after resume -> session-2 flows: {len(app2.runs)}")
    tb.env.run()
    done = app1.completed_runs + app2.completed_runs
    print(f"all {len(done)} flows completed: "
          f"{all(r.status.value == 'SUCCEEDED' for r in done)}")


if __name__ == "__main__":
    faulty_network_campaign()
    reboot_resume()
