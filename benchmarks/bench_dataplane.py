"""Data-plane kernels: vectorized vs frozen loop references.

The interactive view of ``python -m repro bench dataplane`` — each case
times a batched kernel against its pre-vectorization loop reference
(the same pairs ``tests/test_dataplane_identity.py`` pins bit-for-bit)
and reports the speedup.  Sliced h5lite reads are characterized by I/O
accounting as well as wall-clock: a band view must decode only the
band's chunks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import _loops as aloops
from repro.analysis.detection import BlobDetector, Detection, DetectorParams, nms
from repro.analysis.hyperspectral import identify_elements
from repro.emd.h5lite import H5LiteFile, H5LiteWriter
from repro.instrument import _loops as iloops
from repro.instrument.phantoms import Particle, particle_mask
from repro.instrument.spatiotemporal import MovieSpec, generate_movie

from conftest import report


def _best_wall(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_instrument_movie_vectorized(benchmark, output_dir):
    spec = MovieSpec(n_frames=30, shape=(256, 256), n_particles=12)
    movie, _ = benchmark(lambda: generate_movie(spec, np.random.default_rng(0)))
    ref, _ = iloops.generate_movie_loops(spec, np.random.default_rng(0))
    assert np.array_equal(movie, ref)
    loop_wall = _best_wall(
        lambda: iloops.generate_movie_loops(spec, np.random.default_rng(0)), 2
    )
    vec_wall = _best_wall(lambda: generate_movie(spec, np.random.default_rng(0)))
    report(
        "bench_dataplane_movie",
        [
            f"vectorized: {vec_wall * 1e3:.1f} ms / {spec.n_frames} frames",
            f"loop reference: {loop_wall * 1e3:.1f} ms",
            f"speedup: {loop_wall / vec_wall:.2f}x (bit-identical)",
        ],
        output_dir,
    )


def test_phantom_mask_windowed(benchmark, output_dir):
    rng = np.random.default_rng(1)
    particles = [
        Particle(row=float(r), col=float(c), radius=float(rad), element="Au")
        for r, c, rad in zip(
            rng.uniform(20, 492, 40), rng.uniform(20, 492, 40), rng.uniform(4, 14, 40)
        )
    ]
    mask = benchmark(lambda: particle_mask((512, 512), particles))
    assert np.array_equal(mask, iloops.particle_mask_loops((512, 512), particles))
    loop_wall = _best_wall(lambda: iloops.particle_mask_loops((512, 512), particles))
    vec_wall = _best_wall(lambda: particle_mask((512, 512), particles))
    report(
        "bench_dataplane_phantom",
        [
            f"windowed: {vec_wall * 1e3:.2f} ms / {len(particles)} particles",
            f"full-frame loop: {loop_wall * 1e3:.2f} ms",
            f"speedup: {loop_wall / vec_wall:.1f}x (bit-identical)",
        ],
        output_dir,
    )


def test_detection_stack_batched(benchmark, output_dir):
    spec = MovieSpec(n_frames=8, shape=(256, 256), n_particles=10)
    movie, _ = generate_movie(spec, np.random.default_rng(2))
    params = DetectorParams()
    det = BlobDetector(params)
    out = benchmark(lambda: det.detect_movie(movie))
    assert out == aloops.detect_movie_loops(movie, params)
    report(
        "bench_dataplane_detect",
        [
            f"frames: {spec.n_frames}, detections: {sum(len(f) for f in out)}",
            "stacked scipy filtering ≈ per-frame C cost; the win here is",
            "the removed per-frame Python candidate loop (NMS + refine).",
        ],
        output_dir,
    )


def test_nms_vectorized(benchmark, output_dir):
    rng = np.random.default_rng(3)
    n = 800
    cands = [
        Detection(
            x0=float(x), y0=float(y), x1=float(x + s), y1=float(y + s),
            confidence=float(c), scale=2.0,
        )
        for x, y, s, c in zip(
            rng.uniform(0, 2000, n), rng.uniform(0, 2000, n),
            rng.uniform(8, 30, n), rng.uniform(0.1, 1.0, n),
        )
    ]
    kept = benchmark(lambda: nms(cands, 0.4))
    assert kept == aloops.nms_loops(cands, 0.4)
    loop_wall = _best_wall(lambda: aloops.nms_loops(cands, 0.4))
    vec_wall = _best_wall(lambda: nms(cands, 0.4))
    report(
        "bench_dataplane_nms",
        [
            f"candidates: {n}, kept: {len(kept)}",
            f"vectorized: {vec_wall * 1e3:.1f} ms, loop: {loop_wall * 1e3:.1f} ms",
            f"speedup: {loop_wall / vec_wall:.1f}x (identical keep set)",
        ],
        output_dir,
    )


def test_h5lite_band_view_io(benchmark, output_dir, tmp_path):
    cube = np.random.default_rng(6).normal(size=(64, 256, 256))
    path = tmp_path / "cube.h5l"
    with H5LiteWriter(path) as w:
        w.create_dataset("/cube", data=cube, chunks=(4, 256, 256))
    with H5LiteFile(path) as f:
        ds = f["cube"]

        def band() -> np.ndarray:
            return ds.view((slice(8, 12),))

        v = benchmark(band)
        assert np.array_equal(v, cube[8:12])
        assert not v.flags.writeable  # zero-copy: aliases the mmap
        before = dict(f.read_stats)
        ds.view((slice(8, 12),))
        band_blocks = f.read_stats["block_reads"] - before["block_reads"]
        before = dict(f.read_stats)
        ds.read()
        full_blocks = f.read_stats["block_reads"] - before["block_reads"]
        assert band_blocks == 1 and full_blocks == 16
        band_wall = _best_wall(band)
        full_wall = _best_wall(ds.read)
        report(
            "bench_dataplane_h5lite",
            [
                f"band view: {band_wall * 1e6:.0f} µs ({band_blocks} chunk)",
                f"full read: {full_wall * 1e3:.2f} ms ({full_blocks} chunks)",
                f"speedup: {full_wall / band_wall:.0f}x",
            ],
            output_dir,
        )


def test_cohort_drain_counter(benchmark, output_dir):
    from repro.sim import Environment

    n_flows, n_ticks, period = 400, 20, 10.0

    def build():
        env = Environment()
        dispatched = []
        env._trace_hook = lambda t, p, e: dispatched.append(None)

        def flow(env, i):
            deadline = env.timeout(10_000.0 + i)
            for _ in range(n_ticks):
                yield env.timeout(period)
            env.cancel(deadline)

        for i in range(n_flows):
            env.process(flow(env, i))
        return env, dispatched

    def run_new() -> int:
        env, dispatched = build()
        env.run()
        return len(dispatched)

    def run_old_scan() -> int:
        env, dispatched = build()
        while env._n_pending() > env._cancelled_count:
            env.step()
        return len(dispatched)

    n = benchmark(run_new)
    assert n == run_old_scan()
    new_wall = _best_wall(run_new)
    old_wall = _best_wall(run_old_scan, 2)
    report(
        "bench_dataplane_cohort",
        [
            f"{n_flows} flows x {n_ticks} ticks = {n} events (traced run)",
            f"O(1) live counter: {new_wall * 1e3:.1f} ms",
            f"O(buckets)-per-event scan: {old_wall * 1e3:.1f} ms",
            f"speedup: {old_wall / new_wall:.1f}x",
        ],
        output_dir,
    )
