"""Substrate micro-benchmarks: the simulator itself.

Not a paper figure — these measure the engine the reproduction runs on,
so regressions in the DES kernel or the max–min fair allocator show up
before they distort campaign results.  (The optimization guide's rule:
measure, don't guess.)
"""

from __future__ import annotations

import pytest

from repro.net import NetworkFabric, Topology, max_min_fair_rates
from repro.net.fabric import Stream
from repro.sim import Environment, Resource, Store
from repro.units import Gbps, MB


def test_kernel_event_throughput(benchmark):
    """Ping-pong processes: pure event dispatch rate."""

    def run():
        env = Environment()

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(20):
            env.process(ticker(env, 500))
        env.run()
        return env.now

    now = benchmark(run)
    assert now == 500.0


def test_kernel_resource_contention(benchmark):
    def run():
        env = Environment()
        res = Resource(env, capacity=4)
        done = []

        def user(env):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)
                done.append(env.now)

        for _ in range(400):
            env.process(user(env))
        env.run()
        return len(done)

    assert benchmark(run) == 400


def test_kernel_store_pipeline(benchmark):
    def run():
        env = Environment()
        q = Store(env)
        out = []

        def producer(env):
            for i in range(1000):
                yield q.put(i)

        def consumer(env):
            for _ in range(1000):
                out.append((yield q.get()))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return len(out)

    assert benchmark(run) == 1000


def test_fabric_allocator_speed(benchmark):
    """Max–min fair allocation over a contended star topology."""
    t = Topology()
    t.add_node("hub", kind="switch")
    for i in range(20):
        t.add_node(f"h{i}")
        t.add_link(f"h{i}", "hub", Gbps(1))
    streams = [
        Stream(
            stream_id=i,
            src=f"h{i % 20}",
            dst=f"h{(i + 7) % 20}",
            links=tuple(t.route(f"h{i % 20}", f"h{(i + 7) % 20}")),
            remaining_bytes=1.0,
            done=None,
        )
        for i in range(60)
    ]
    caps = {l.key: l.capacity_bps for l in t.links()}
    rates = benchmark(max_min_fair_rates, streams, caps)
    assert len(rates) == 60
    assert all(r > 0 for r in rates.values())


def test_fabric_transfer_churn(benchmark):
    """Many overlapping transfers with constant reallocation."""

    def run():
        env = Environment()
        t = Topology()
        t.add_node("a")
        t.add_node("b")
        t.add_link("a", "b", Gbps(1))
        fabric = NetworkFabric(env, t)
        finished = []

        def submit(env, i):
            yield env.timeout(i * 0.01)
            stream = yield fabric.transfer("a", "b", MB(5))
            finished.append(stream.stream_id)

        for i in range(100):
            env.process(submit(env, i))
        env.run()
        return len(finished)

    assert benchmark(run) == 100
