"""Chaos subsystem cost + recovery-latency characterization.

Two claims to defend:

* **disabled chaos is free** — a campaign run with :data:`NO_CHAOS` (or
  no chaos argument at all) pays nothing for the subsystem's existence:
  bit-identical event trace, and wall-clock cost within noise of the
  pre-chaos path;
* **recovery is bounded** — under the shipped ``outage`` scenario every
  degraded step catches up, and the recovery-latency percentiles land in
  the same regime as the outage windows that caused them (minutes, not
  hours).
"""

from __future__ import annotations

import time

from repro.chaos import NO_CHAOS, delivery_breakdown, run_chaos_campaign
from repro.core import run_campaign
from repro.core.sanitize import campaign_trace

from conftest import report

DURATION = 1800.0


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_chaos_disabled_is_free(benchmark, output_dir):
    # Warm-up outside the timed region.
    run_campaign("hyperspectral", duration_s=300.0, seed=9)
    run_campaign("hyperspectral", duration_s=300.0, seed=9, chaos=NO_CHAOS)

    base_res, _ = _time(
        lambda: run_campaign("hyperspectral", duration_s=DURATION, seed=1)
    )
    plain = [
        _time(lambda: run_campaign("hyperspectral", duration_s=DURATION, seed=1))[1]
        for _ in range(3)
    ]
    off_res, _ = _time(
        lambda: run_campaign(
            "hyperspectral", duration_s=DURATION, seed=1, chaos=NO_CHAOS
        )
    )
    off = [
        _time(
            lambda: run_campaign(
                "hyperspectral", duration_s=DURATION, seed=1, chaos=NO_CHAOS
            )
        )[1]
        for _ in range(3)
    ]

    def no_chaos_run():
        return run_campaign(
            "hyperspectral", duration_s=DURATION, seed=1, chaos=NO_CHAOS
        )

    benchmark(no_chaos_run)

    base, disabled = min(plain), min(off)
    lines = [
        f"plain campaign:    {base * 1e3:.1f} ms (best of 3)",
        f"NO_CHAOS campaign: {disabled * 1e3:.1f} ms (best of 3)",
        f"disabled-chaos cost: {100 * (disabled - base) / base:+.1f}%",
        f"event traces identical: "
        f"{campaign_trace(base_res) == campaign_trace(off_res)}",
    ]
    report("bench_chaos_disabled", lines, output_dir)
    # Bit-identity is the hard gate (also enforced by tier-1); timing
    # must stay within noise, not within an order of magnitude.
    assert campaign_trace(base_res) == campaign_trace(off_res)
    assert disabled < base * 1.5


def test_chaos_recovery_latency(benchmark, output_dir):
    result = benchmark.pedantic(
        lambda: run_chaos_campaign(
            "outage", use_case="hyperspectral", duration_s=DURATION, seed=5
        ),
        rounds=1,
        iterations=1,
    )
    breakdown = delivery_breakdown(result)
    rep = result.chaos.report()
    pct = rep["recovery_latency_s"]
    lines = [
        f"runs: {breakdown['runs']}  delivered: {breakdown['delivered']}  "
        f"degraded: {breakdown['degraded']}  "
        f"dead-lettered: {breakdown['dead_lettered']}  "
        f"hung: {breakdown['still_active']}",
        f"flow retries: {rep['flow_retries']}; "
        f"gate rejections: {rep['gate_rejections']}",
        f"backlog: {rep['backlog_recovered']}/{rep['backlog_total']} caught up",
    ]
    if pct:
        lines.append(
            f"recovery latency p50/p95/max: "
            f"{pct['p50']:.1f}/{pct['p95']:.1f}/{pct['max']:.1f} s"
        )
    report("bench_chaos_recovery", lines, output_dir)

    assert breakdown["still_active"] == 0  # the no-hung-runs guarantee
    assert rep["backlog_pending"] == 0  # every degraded step caught up
    if pct:
        # Recovery is bounded by the outage that caused it: the longest
        # window is 10 minutes, so catch-up stays under the hour.
        assert pct["max"] < 3600.0
