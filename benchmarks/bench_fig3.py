"""Fig. 3: annotated nanoparticle detections on movie frames.

Runs the real Sec. 3.2 inference pipeline on a movie of gold
nanoparticles: fp64→uint8 conversion, per-frame detection with the
calibrated model, box annotation, and the per-frame count series the
caption describes.  The benchmark measures per-frame inference (the
quantity the paper runs on an A100 and wants faster).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import (
    BlobDetector,
    IouTracker,
    LabelingSpec,
    annotate_video,
    calibrate,
    count_series,
    hand_label,
    movie_to_uint8,
    split_9_3_1,
)
from repro.instrument import MovieSpec, PicoProbe
from repro.rng import RngRegistry
from repro.viz import line_chart

from conftest import report


@pytest.fixture(scope="module")
def movie_world():
    spec = MovieSpec(n_frames=120, shape=(320, 320), n_particles=8, radius_range=(5, 11))
    probe = PicoProbe(RngRegistry(seed=3), operator="bench-user")
    signal, truth = probe.acquire_spatiotemporal(spec)
    labeled = hand_label(truth, LabelingSpec(every_nth=10), rng=np.random.default_rng(1))
    train, _, _ = split_9_3_1(labeled)
    movie = signal.data
    params, _ = calibrate(
        [movie[lf.frame_index] for lf in train], [lf.boxes for lf in train]
    )
    return spec, movie, truth, params


def test_fig3_inference_and_annotation(benchmark, movie_world, output_dir, tmp_path):
    spec, movie, truth, params = movie_world
    detector = BlobDetector(params)

    # Benchmark one-frame inference (the repeated unit of the flow).
    detections_frame0 = benchmark(detector.detect, movie[0])
    conf = params.operating_confidence
    confident = [d for d in detections_frame0 if d.confidence >= conf]
    # Exact on well-separated frames; off-by-one when two particles
    # happen to overlap at frame 0.
    assert abs(len(confident) - len(truth[0])) <= 1

    # Full pipeline once: cast, detect movie, annotate, count.
    movie_u8 = movie_to_uint8(movie)
    detections = detector.detect_movie(movie)
    video_path = str(tmp_path / "annotated.mpng")
    n = annotate_video(movie_u8, detections, video_path, confidence_threshold=conf)
    assert n == spec.n_frames
    assert os.path.getsize(video_path) > 0

    counts = count_series(detections, min_confidence=conf)
    truth_counts = np.array([len(t) for t in truth])
    # Per-frame counts track the ground truth (the caption's use case).
    assert abs(np.median(counts) - np.median(truth_counts)) <= 1
    match_rate = np.mean(np.abs(counts - truth_counts) <= 1)
    assert match_rate > 0.9

    tracks = IouTracker(min_confidence=conf).run(detections)
    long_tracks = [t for t in tracks if t.length >= spec.n_frames // 2]

    chart = line_chart(
        [
            ("detected", list(range(len(counts))), [float(c) for c in counts]),
            ("truth", list(range(len(truth_counts))), [float(c) for c in truth_counts]),
        ],
        title="Fig. 3: nanoparticles per frame",
        xlabel="frame",
        ylabel="count",
    )
    with open(os.path.join(output_dir, "fig3_counts.svg"), "w", encoding="utf-8") as fh:
        fh.write(chart)

    report(
        "fig3",
        [
            f"movie             : {movie.shape} float64",
            f"operating conf    : {conf}",
            f"median count      : detected {int(np.median(counts))} vs truth {int(np.median(truth_counts))}",
            f"count match (±1)  : {100 * match_rate:.0f}% of frames",
            f"long-lived tracks : {len(long_tracks)} (particles: {spec.n_particles})",
            "chart             : benchmarks/output/fig3_counts.svg",
        ],
        output_dir,
    )


def test_fig3_conversion_cast(benchmark, movie_world):
    """The fp64→uint8 cast the paper singles out as the compute
    bottleneck — benchmarked in isolation."""
    spec, movie, *_ = movie_world
    out = benchmark(movie_to_uint8, movie)
    assert out.dtype == np.uint8
    assert out.shape == movie.shape
