"""Fig. 4: itemized runtime statistics of both flows.

Regenerates the per-step (Transfer / Analysis / Publication) active
times plus the Active-vs-Overhead split for both campaigns, renders the
two box-plot panels, and checks the breakdown's shape: transfer
dominates active time in both flows; orchestration overhead is ≈49% of
median runtime for hyperspectral and ≈21% for spatiotemporal.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import fig4_samples, fig4_svg, run_campaign

from conftest import report


@pytest.fixture(scope="module")
def campaigns():
    return (
        run_campaign("hyperspectral", seed=1),
        run_campaign("spatiotemporal", seed=2),
    )


def test_fig4_breakdown(benchmark, campaigns, output_dir):
    hyper, spatio = campaigns

    def build_samples():
        return fig4_samples(hyper.runs), fig4_samples(spatio.runs)

    hs, ss = benchmark(build_samples)

    lines = []
    paper_fig4 = {
        "hyperspectral": {"overhead_pct": 49.2},
        "spatiotemporal": {"overhead_pct": 21.1},
    }
    for name, samples, res in (
        ("hyperspectral", hs, hyper),
        ("spatiotemporal", ss, spatio),
    ):
        med = {k: float(np.median(v)) for k, v in samples.items()}
        total = med["Active"] + med["Overhead"]
        ovh_pct = 100 * med["Overhead"] / total
        lines.append(
            f"{name}: median Transfer {med['Transfer']:.1f}s, "
            f"Analysis {med['Analysis']:.1f}s, Publication {med['Publication']:.1f}s, "
            f"Active {med['Active']:.1f}s, Overhead {med['Overhead']:.1f}s "
            f"({ovh_pct:.1f}%; paper {paper_fig4[name]['overhead_pct']}%)"
        )
        svg = fig4_svg(res.runs, f"Itemized runtime: {name} flow")
        path = os.path.join(output_dir, f"fig4_{name}.svg")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(svg)
        lines.append(f"  panel: {path}")

        # Transfer dominates active flow time (Sec. 3.3's bottleneck
        # finding) in both use cases.
        assert med["Transfer"] > med["Analysis"]
        assert med["Transfer"] > 5 * med["Publication"]

    report("fig4", lines, output_dir)

    hs_med = {k: float(np.median(v)) for k, v in hs.items()}
    ss_med = {k: float(np.median(v)) for k, v in ss.items()}
    # Overhead fractions bracket the paper's 49.2% / 21.1%.
    h_pct = 100 * hs_med["Overhead"] / (hs_med["Active"] + hs_med["Overhead"])
    s_pct = 100 * ss_med["Overhead"] / (ss_med["Active"] + ss_med["Overhead"])
    assert 35 < h_pct < 65
    assert 10 < s_pct < 30
    # The spatiotemporal compute phase is dominated by conversion: its
    # Analysis median is an order of magnitude above hyperspectral's.
    assert ss_med["Analysis"] > 5 * hs_med["Analysis"]
    # Absolute overhead is *larger* for spatiotemporal (more seconds)
    # even though relatively smaller (fewer percent) — the Fig. 4
    # crossover.
    assert ss_med["Overhead"] > hs_med["Overhead"]


def test_fig4_overhead_is_mechanistic(benchmark, campaigns, output_dir):
    """Overhead must equal polling detection lag + transitions, not an
    arbitrary residue: per run, the sum of step observed times plus
    transitions equals the runtime."""
    hyper, _ = campaigns

    def check():
        checked = 0
        for r in hyper.completed_runs:
            step_total = sum(s.observed_seconds for s in r.steps)
            transitions = r.runtime_seconds - step_total
            # 4 transitions at ~1.5 s median each (lognormal: allow tails).
            assert 0.2 < transitions < 30.0
            assert r.overhead_seconds == pytest.approx(
                r.runtime_seconds - r.active_seconds, abs=1e-6
            )
            checked += 1
        return checked

    n = benchmark(check)
    assert n == len(hyper.completed_runs)
