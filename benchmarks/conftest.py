"""Shared fixtures and paper reference values for the benchmark harness.

Every bench regenerates one table or figure from the paper's evaluation
(Sec. 3) and checks the *shape* of the result — who wins, by what rough
factor, where the crossovers fall — against the published numbers.
Absolute timings of the benchmarks themselves measure this simulator,
not the authors' testbed.

Artifacts (SVG figures, text tables) are written to
``benchmarks/output/`` so they can be inspected side by side with the
paper.
"""

from __future__ import annotations

import os

import pytest

#: Table 1 exactly as printed in the paper.
PAPER_TABLE1 = {
    "hyperspectral": {
        "start_period_s": 30,
        "transfer_volume_mb": 91,
        "total_data_gb": 6.42,
        "min_runtime_s": 29,
        "mean_runtime_s": 47,
        "max_runtime_s": 181,
        "median_overhead_s": 19.5,
        "median_overhead_pct": 49.2,
        "total_runs": 72,
    },
    "spatiotemporal": {
        "start_period_s": 120,
        "transfer_volume_mb": 1200,
        "total_data_gb": 21.72,
        "min_runtime_s": 195,
        "mean_runtime_s": 224,
        "max_runtime_s": 274,
        "median_overhead_s": 45.2,
        "median_overhead_pct": 21.1,
        "total_runs": 18,
    },
}

#: Sec. 3.2: YOLOv8 fine-tuned detector quality.
PAPER_MAP = {"train": 0.791, "val": 0.801}


@pytest.fixture(scope="session")
def output_dir() -> str:
    out = os.path.join(os.path.dirname(__file__), "output")
    os.makedirs(out, exist_ok=True)
    return out


def report(name: str, lines: "list[str]", output_dir: str) -> None:
    """Print a paper-vs-measured block and persist it."""
    text = "\n".join([f"=== {name} ==="] + lines)
    print("\n" + text)
    with open(os.path.join(output_dir, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
