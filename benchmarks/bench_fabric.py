"""Fabric scale-out benchmarks: the incremental allocator at load.

Interactive (pytest-benchmark) view of the same scenarios
``python -m repro bench fabric`` tracks as JSON: many independent
facilities streaming concurrently — the workload where
component-restricted reallocation pays — and the all-through-one-hub
worst case where every stream is fair-share-coupled to every other.
"""

from __future__ import annotations

from repro.net import NetworkFabric, Topology
from repro.sim import Environment
from repro.units import Gbps, MB


def _multisite(n_sites: int, per_site: int) -> int:
    env = Environment()
    topo = Topology()
    for s in range(n_sites):
        topo.add_node(f"inst{s}")
        topo.add_node(f"sw{s}", kind="switch")
        topo.add_node(f"stor{s}")
        topo.add_link(f"inst{s}", f"sw{s}", Gbps(1))
        topo.add_link(f"sw{s}", f"stor{s}", Gbps(10))
    fabric = NetworkFabric(env, topo)
    done = []

    def submit(env, site, i):
        yield env.timeout(i * 0.05)
        nbytes = MB(5 + (7 * (site * per_site + i)) % 45)
        stream = yield fabric.transfer(f"inst{site}", f"stor{site}", nbytes)
        done.append(stream.stream_id)

    for site in range(n_sites):
        for i in range(per_site):
            env.process(submit(env, site, i))
    env.run()
    return len(done)


def _shared_hub(n_streams: int) -> int:
    env = Environment()
    topo = Topology()
    topo.add_node("hub", kind="switch")
    n_hosts = 20
    for h in range(n_hosts):
        topo.add_node(f"h{h}")
        topo.add_link(f"h{h}", "hub", Gbps(1))
    fabric = NetworkFabric(env, topo)
    done = []

    def submit(env, i):
        yield env.timeout(i * 0.05)
        src, dst = f"h{i % n_hosts}", f"h{(i + 7) % n_hosts}"
        stream = yield fabric.transfer(src, dst, MB(5 + (7 * i) % 45))
        done.append(stream.stream_id)

    for i in range(n_streams):
        env.process(submit(env, i))
    env.run()
    return len(done)


def test_fabric_multisite_scale_out(benchmark):
    """40 sites x 25 streams: independent components stay independent."""
    assert benchmark(lambda: _multisite(40, 25)) == 1000


def test_fabric_shared_hub_worst_case(benchmark):
    """200 streams through one switch: one big coupled component."""
    assert benchmark(lambda: _shared_hub(200)) == 200
