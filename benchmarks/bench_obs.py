"""Observability overhead + span-derived Fig. 4 consistency.

Two claims to defend:

* the disabled path is free — running a campaign with tracing off costs
  the same as before repro.obs existed (no-op tracer, no per-event
  allocation), and the enabled path's cost is modest;
* the span-derived Active/Overhead decomposition agrees with the
  record-based one (the tier-1 gate checks exactness; here we report
  the derived headline numbers next to the paper's).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import run_campaign
from repro.core.stats import STEP_LABELS
from repro.obs import derive_runs, fig4_samples_from_traces, run_summary_stats

from conftest import PAPER_TABLE1, report

DURATION = 1800.0


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_tracing_overhead(benchmark, output_dir):
    # Warm-up (imports, code paths) outside the timed region.
    run_campaign("hyperspectral", duration_s=300.0, seed=9)
    run_campaign("hyperspectral", duration_s=300.0, seed=9, obs=True)

    untraced = [
        _time(lambda: run_campaign("hyperspectral", duration_s=DURATION, seed=1))[1]
        for _ in range(3)
    ]
    traced_res, _ = _time(
        lambda: run_campaign("hyperspectral", duration_s=DURATION, seed=1, obs=True)
    )
    traced = [
        _time(
            lambda: run_campaign(
                "hyperspectral", duration_s=DURATION, seed=1, obs=True
            )
        )[1]
        for _ in range(3)
    ]

    def traced_run():
        return run_campaign("hyperspectral", duration_s=DURATION, seed=1, obs=True)

    benchmark(traced_run)

    base, full = min(untraced), min(traced)
    n_spans = len(traced_res.testbed.obs.tracer.spans)
    lines = [
        f"untraced campaign: {base * 1e3:.1f} ms (best of 3)",
        f"traced campaign:   {full * 1e3:.1f} ms (best of 3), {n_spans} spans",
        f"tracing cost: {100 * (full - base) / base:+.1f}%",
    ]
    report("bench_obs_overhead", lines, output_dir)
    # The disabled path must not have regressed; the enabled path's
    # cost should stay well under one order of magnitude.
    assert full < base * 3.0


def test_span_derived_fig4_headline(benchmark, output_dir):
    res = run_campaign("hyperspectral", seed=1, obs=True)

    def derive():
        runs = derive_runs(res.testbed.obs.tracer.spans)
        return runs, fig4_samples_from_traces(runs, STEP_LABELS)

    runs, samples = benchmark(derive)
    stats = run_summary_stats(runs)
    med = {k: float(np.median(v)) for k, v in samples.items() if v}
    paper = PAPER_TABLE1["hyperspectral"]
    lines = [
        f"runs derived from spans: {int(stats['total_runs'])} "
        f"(paper {paper['total_runs']})",
        f"median overhead: {stats['median_overhead_s']:.1f}s / "
        f"{stats['median_overhead_pct']:.1f}% "
        f"(paper {paper['median_overhead_s']}s / {paper['median_overhead_pct']}%)",
        f"median step actives: Transfer {med['Transfer']:.1f}s, "
        f"Analysis {med['Analysis']:.1f}s, Publication {med['Publication']:.1f}s",
    ]
    report("bench_obs_fig4", lines, output_dir)
    # Same shape as the paper: transfer dominates, overhead ~half.
    assert med["Transfer"] > med["Analysis"] > med["Publication"]
    assert 30.0 < stats["median_overhead_pct"] < 70.0
