"""Sec. 3.2: detector quality — mAP50-95 on the paper's data layout.

Reproduces the evaluation protocol exactly: a 600-frame 640×640 movie of
gold nanoparticles, every 50th frame hand-labeled, a 9/3/1-proportioned
train/val/test split, detector "fine-tuning" (parameter calibration) on
the training split, and COCO-style mAP50-95 on each split.

Paper: 0.791 (train) / 0.801 (val) with fine-tuned YOLOv8s.  Our
classical DoG detector lands in the same quality band; the residual gap
comes from merged detections when particles overlap mid-movie.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    BlobDetector,
    LabelingSpec,
    calibrate,
    hand_label,
    map_range,
    split_9_3_1,
)
from repro.instrument import MovieSpec, PicoProbe
from repro.rng import RngRegistry

from conftest import PAPER_MAP, report


def test_detector_map50_95(benchmark, output_dir):
    # The paper's movie geometry: 600 frames of 640x640.
    spec = MovieSpec(
        n_frames=600, shape=(640, 640), n_particles=16, radius_range=(6, 12)
    )
    probe = PicoProbe(RngRegistry(seed=3), operator="bench-user")
    signal, truth = probe.acquire_spatiotemporal(spec)
    movie = signal.data

    # Hand-label every 50th frame (12 frames) and split 9/3/1-style.
    labeled = hand_label(truth, LabelingSpec(every_nth=50), rng=np.random.default_rng(1))
    train, val, test = split_9_3_1(labeled)

    def finetune_and_eval():
        params, m_train = calibrate(
            [movie[lf.frame_index] for lf in train], [lf.boxes for lf in train]
        )
        det = BlobDetector(params)
        m_val = map_range(
            [(det.detect(movie[lf.frame_index]), list(lf.boxes)) for lf in val]
        )
        m_test = map_range(
            [(det.detect(movie[lf.frame_index]), list(lf.boxes)) for lf in test]
        )
        return params, m_train, m_val, m_test

    params, m_train, m_val, m_test = benchmark.pedantic(
        finetune_and_eval, rounds=1, iterations=1
    )

    report(
        "detector_map",
        [
            f"movie       : {movie.shape} float64 ({movie.nbytes / 1e9:.2f} GB)",
            f"labels      : {len(labeled)} frames -> {len(train)}/{len(val)}/{len(test)} train/val/test",
            f"fine-tuned  : threshold={params.threshold}, radius_scale={params.radius_scale}, "
            f"operating_confidence={params.operating_confidence}",
            f"mAP50-95    : train {m_train:.3f} (paper {PAPER_MAP['train']})",
            f"              val   {m_val:.3f} (paper {PAPER_MAP['val']})",
            f"              test  {m_test:.3f}",
        ],
        output_dir,
    )

    # Same quality band as the paper's fine-tuned YOLOv8.
    assert m_train > 0.60
    assert m_val > 0.60
    # Train and val agree (no gross over-fitting), as in the paper
    # (0.791 vs 0.801).
    assert abs(m_train - m_val) < 0.15
