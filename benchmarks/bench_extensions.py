"""Future-work extensions, quantified (Sec. 5 items + Sec. 3.2's 4-D case).

1. **Compression before transfer** (future-work item 2): a compress
   state on the user machine shrinks wire time.  An emergent subtlety
   the paper's own backoff produces: a *modest* codec (lz4-like, 1.5x)
   saves real transfer seconds but the exponential-polling boundaries
   swallow the gain — only a codec strong enough to push the transfer
   under the previous poll boundary (zstd-like, 2.1x) shortens flows.
2. **The 4-D spectral movie** (Sec. 3.2 future work): at ~9.6 GB per
   file, transfer dominates utterly and only ~2 flows complete per hour
   — the quantitative version of "vastly increasing the data volume".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_campaign
from repro.core.extensions import LZ4_LIKE, SPECTRAL_MOVIE_USE_CASE, ZSTD_LIKE
from repro.core.tools import TRANSFER_STATE

from conftest import report


def test_extension_compression(benchmark, output_dir):
    def run_zstd():
        return run_campaign("spatiotemporal", seed=2, compression=ZSTD_LIKE)

    zstd = benchmark(run_zstd)
    base = run_campaign("spatiotemporal", seed=2)
    lz4 = run_campaign("spatiotemporal", seed=2, compression=LZ4_LIKE)

    def stats(res):
        runs = res.completed_runs
        return (
            len(runs),
            float(np.mean([r.runtime_seconds for r in runs])),
            float(np.median([r.step(TRANSFER_STATE).active_seconds for r in runs])),
        )

    n_b, mean_b, xfer_b = stats(base)
    n_l, mean_l, xfer_l = stats(lz4)
    n_z, mean_z, xfer_z = stats(zstd)
    report(
        "extension_compression",
        [
            f"no compression : {n_b} runs/h, mean {mean_b:.0f}s, median transfer {xfer_b:.0f}s",
            f"lz4-like (1.5x): {n_l} runs/h, mean {mean_l:.0f}s, median transfer {xfer_l:.0f}s",
            f"zstd-like(2.1x): {n_z} runs/h, mean {mean_z:.0f}s, median transfer {xfer_z:.0f}s",
            "note: lz4 saves wire seconds but the polling boundary swallows",
            "them; zstd pushes the transfer under the previous poll and wins.",
        ],
        output_dir,
    )
    # Both codecs genuinely shrink the transfer step…
    assert xfer_l < xfer_b * 0.8
    assert xfer_z < xfer_b * 0.65
    # …but only the stronger codec shortens the *flow* (poll quantization).
    assert mean_z < mean_b * 0.8
    assert n_z > n_b
    assert abs(mean_l - mean_b) < mean_b * 0.15  # lz4 gain mostly swallowed


def test_extension_4d_spectral_movie(benchmark, output_dir):
    def run_4d():
        return run_campaign("spectral-movie", seed=3)

    res = benchmark(run_4d)
    runs = res.completed_runs
    assert runs, "at least one 4-D flow must complete in the hour"
    mean_rt = float(np.mean([r.runtime_seconds for r in runs]))
    xfer = float(np.median([r.step(TRANSFER_STATE).active_seconds for r in runs]))
    frac = xfer / mean_rt
    spatio = run_campaign("spatiotemporal", seed=3)
    n_spatio = len(spatio.completed_runs)
    report(
        "extension_4d",
        [
            f"file size      : {SPECTRAL_MOVIE_USE_CASE.file_size_bytes / 1e9:.1f} GB "
            f"(shape {SPECTRAL_MOVIE_USE_CASE.shape})",
            f"flows per hour : {len(runs)} (vs {n_spatio} for the 3-D movie)",
            f"mean runtime   : {mean_rt:.0f}s; transfer {xfer:.0f}s ({100 * frac:.0f}% of runtime)",
            "the paper's anticipated regime: data velocity outruns the",
            "1 Gbps site uplink long before the future 65 GB/s detectors.",
        ],
        output_dir,
    )
    # 8x the bytes → dramatically fewer flows, transfer-dominated.
    assert len(runs) <= n_spatio / 3
    assert frac > 0.45
    # With compression, the 4-D case completes more flows.
    zstd = run_campaign("spectral-movie", seed=3, compression=ZSTD_LIKE)
    assert len(zstd.completed_runs) >= len(runs)
