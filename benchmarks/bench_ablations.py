"""Ablations of the design choices the paper calls out (Sec. 3.3 + 5).

1. **Polling backoff** — the paper blames its 49.2% overhead on the
   exponential backoff "which we are working to improve": replacing it
   with constant 1 s polling collapses overhead.
2. **Cold vs warm nodes** — the max runtimes "are associated with the
   first flows, as they have to request a compute node on Polaris":
   quantify the cold-start penalty and the warm-reuse win.
3. **Switch contention** — strict-periodic emission overlaps flows on
   the shared 1 Gbps switch; transfers slow as concurrency rises (the
   motivation for the paper's on-site upgrades).
4. **Site uplink upgrade** — future work item (1): a 10 Gbps site switch
   shifts the bottleneck off the transfer step.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import run_campaign
from repro.core.tools import TRANSFER_STATE
from repro.testbed import DEFAULT_CALIBRATION
from repro.units import Gbps

from conftest import report


def _median_overhead_pct(res):
    done = res.completed_runs
    return float(np.median([100 * r.overhead_fraction for r in done]))


def test_ablation_backoff_policy(benchmark, output_dir):
    """Constant 1 s polling vs the paper's exponential backoff."""
    fast_poll = replace(
        DEFAULT_CALIBRATION, backoff_factor=1.0, backoff_max_s=1.0, backoff_initial_s=1.0
    )

    def run_fixed():
        return run_campaign("hyperspectral", seed=1, calibration=fast_poll)

    fixed = benchmark(run_fixed)
    paper_mode = run_campaign("hyperspectral", seed=1)

    ovh_fixed = _median_overhead_pct(fixed)
    ovh_paper = _median_overhead_pct(paper_mode)
    mean_fixed = float(np.mean([r.runtime_seconds for r in fixed.completed_runs]))
    mean_paper = float(np.mean([r.runtime_seconds for r in paper_mode.completed_runs]))
    report(
        "ablation_backoff",
        [
            f"exponential backoff (paper): median overhead {ovh_paper:.1f}%, mean runtime {mean_paper:.1f}s",
            f"constant 1 s polling       : median overhead {ovh_fixed:.1f}%, mean runtime {mean_fixed:.1f}s",
            f"runs completed             : {len(paper_mode.completed_runs)} -> {len(fixed.completed_runs)}",
        ],
        output_dir,
    )
    # The fix the paper is "working to improve" towards: a large overhead
    # cut (the residue is transition latency + 1 s poll quantization).
    assert ovh_fixed < ovh_paper * 0.65
    assert mean_fixed < mean_paper
    assert len(fixed.completed_runs) > len(paper_mode.completed_runs)


def test_ablation_cold_vs_warm(benchmark, output_dir):
    """Quantify the first-flow cold-start penalty."""

    def run():
        return run_campaign("hyperspectral", seed=5)

    res = benchmark(run)
    runs = res.completed_runs
    cold = [
        r
        for r in runs
        if r.step("AnalyzeData").result.get("cold_start")
    ]
    warm = [r for r in runs if r not in cold]
    assert cold and warm
    cold_mean = float(np.mean([r.runtime_seconds for r in cold]))
    warm_mean = float(np.mean([r.runtime_seconds for r in warm]))
    report(
        "ablation_cold_warm",
        [
            f"cold-start flows: {len(cold)}, mean runtime {cold_mean:.1f}s",
            f"warm flows      : {len(warm)}, mean runtime {warm_mean:.1f}s",
            f"penalty         : {cold_mean - warm_mean:.1f}s "
            f"(queue + boot + env-cache budget: "
            f"{DEFAULT_CALIBRATION.cold_start_budget_s():.0f}s median)",
        ],
        output_dir,
    )
    # Cold flows are the max-runtime population, as the paper observes.
    assert cold_mean > warm_mean + 30
    assert max(r.runtime_seconds for r in cold) == max(
        r.runtime_seconds for r in runs
    )


def test_ablation_switch_contention(benchmark, output_dir):
    """Overlapped flows contend for the effective site capacity.

    At the paper's 120 s spatiotemporal period, flows barely overlap
    (transfer ≈ 115 s < period) — consistent with the paper running them
    gated.  Doubling the data velocity (one 1200 MB file every 60 s)
    exceeds the site's effective transfer capacity (~10.8 MB/s through
    the 1 Gbps switch with the measured protocol efficiency) and
    transfers pile up — the scenario motivating the on-site upgrades.
    """
    from dataclasses import replace as dc_replace

    from repro.instrument import SPATIOTEMPORAL_USE_CASE

    fast_uc = dc_replace(SPATIOTEMPORAL_USE_CASE, period_s=60.0)

    def run_overlapped():
        return run_campaign(fast_uc, seed=2, copier_mode="periodic")

    overlapped = benchmark(run_overlapped)
    gated = run_campaign("spatiotemporal", seed=2, copier_mode="gated")

    def transfer_actives(res):
        return [
            r.step(TRANSFER_STATE).active_seconds for r in res.completed_runs
        ]

    t_over = float(np.median(transfer_actives(overlapped)))
    t_gated = float(np.median(transfer_actives(gated)))
    report(
        "ablation_contention",
        [
            f"gated (serialized) transfers     : median {t_gated:.1f}s",
            f"overlapped (1200 MB every 60 s)  : median {t_over:.1f}s",
            f"slowdown from shared site uplink : {t_over / t_gated:.2f}x",
            f"completed flows in the hour      : {len(gated.completed_runs)} gated "
            f"vs {len(overlapped.completed_runs)} overlapped (queue builds up)",
        ],
        output_dir,
    )
    assert t_over > t_gated * 1.3


def test_ablation_site_uplink_upgrade(benchmark, output_dir):
    """Future-work item (1): upgrade the 1 Gbps site switch."""
    upgraded_cal = replace(DEFAULT_CALIBRATION, site_switch_bps=Gbps(10))

    def run_upgraded():
        return run_campaign("spatiotemporal", seed=2, calibration=upgraded_cal)

    up = benchmark(run_upgraded)
    base = run_campaign("spatiotemporal", seed=2)
    up_mean = float(np.mean([r.runtime_seconds for r in up.completed_runs]))
    base_mean = float(np.mean([r.runtime_seconds for r in base.completed_runs]))
    report(
        "ablation_uplink",
        [
            f"1 Gbps switch : mean runtime {base_mean:.1f}s, {len(base.completed_runs)} runs/h",
            f"10 Gbps switch: mean runtime {up_mean:.1f}s, {len(up.completed_runs)} runs/h",
            "note: endpoint protocol efficiency, not the wire, now limits "
            "throughput — matching the paper's call for transfer-stack "
            "tuning alongside hardware upgrades",
        ],
        output_dir,
    )
    # More link capacity alone cannot beat the endpoint-efficiency wall:
    # runtime improves only modestly (shape point, not a number).
    assert up_mean <= base_mean
    assert len(up.completed_runs) >= len(base.completed_runs)
