"""Fig. 2: the hyperspectral portal page (image, spectrum, metadata).

Runs the *real* Sec. 3.1 content pipeline — synthesize a hyperspectral
cube of the polyamide/heavy-metal phantom, write a real EMD file, do the
reductions + metadata extraction + plot rendering, publish, and build
the portal record page — then checks each Fig. 2 panel is present and
correct.  The benchmark measures the analysis function itself (the
per-file compute the paper runs on a Polaris node).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import identify_elements, intensity_map, sum_spectrum
from repro.core import analyze_hyperspectral_file
from repro.emd import read_emd, write_emd
from repro.instrument import PicoProbe
from repro.portal import Portal
from repro.rng import RngRegistry
from repro.search import SearchIndex

from conftest import report


@pytest.fixture(scope="module")
def emd_file(tmp_path_factory):
    out = tmp_path_factory.mktemp("fig2")
    probe = PicoProbe(RngRegistry(seed=7), operator="bench-user")
    signal, particles = probe.acquire_hyperspectral(shape=(128, 128), n_channels=1024)
    path = out / f"{signal.metadata.acquisition_id}.emd"
    write_emd(path, signal, compression="zlib")
    return str(path), str(out), signal, particles


def test_fig2_hyperspectral_page(benchmark, emd_file, output_dir):
    path, out, signal, particles = emd_file
    record = benchmark(analyze_hyperspectral_file, path, out)

    # Panel A: the intensity image (sum over the spectral axis).
    img = intensity_map(signal.data)
    assert img.shape == (128, 128)
    assert "intensity image" in record["plots"]
    # Heavy-metal particles are bright in the intensity image: the mean
    # intensity at particle centers beats the background mean.
    centers = np.array([[int(p.row), int(p.col)] for p in particles])
    at_particles = img[centers[:, 0], centers[:, 1]].mean()
    assert at_particles > img.mean() * 1.2

    # Panel B: the sum spectrum with the sample's characteristic lines.
    spec = sum_spectrum(signal.data)
    hits = identify_elements(spec, signal.dims[2].values)
    found = {h.element for h in hits}
    assert {"C", "N", "O"} <= found  # the polyamide matrix
    assert "Au" in found or "Pb" in found  # the captured heavy metals
    assert "sum spectrum" in record["plots"]

    # Panel C: the metadata table fields the portal renders.
    exp = record["experiment"]
    assert exp["microscope"]["beam_energy_kev"] == 300.0
    assert exp["microscope"]["detectors"][0]["name"] == "XPAD"
    assert exp["sample"]["elements"]

    # The page itself.
    index = SearchIndex("fig2")
    index.ingest(exp["acquisition_id"], record)
    html = Portal(index).render_record(exp["acquisition_id"])
    assert html.count("<svg") >= 2  # A and B embedded
    assert "Beam energy (keV)" in html  # C rendered
    with open(os.path.join(output_dir, "fig2_record.html"), "w", encoding="utf-8") as fh:
        fh.write(html)

    report(
        "fig2",
        [
            f"cube shape        : {signal.data.shape}",
            f"elements detected : {sorted(found)}  (phantom: C/N/O film + Au/Pb)",
            f"plots embedded    : {sorted(record['plots'])}",
            f"portal page       : benchmarks/output/fig2_record.html",
        ],
        output_dir,
    )


def test_fig2_emd_lazy_read(benchmark, emd_file):
    """The flow reads the cube once from the container; benchmark the
    EMD read path the analysis function depends on."""
    path, *_ = emd_file

    def read_cube():
        with read_emd(path) as f:
            return f.signal().data.read()

    cube = benchmark(read_cube)
    assert cube.shape == (128, 128, 1024)
