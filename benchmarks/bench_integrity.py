"""Integrity subsystem cost + corruption-audit characterization.

Three claims to defend:

* **disabled integrity is free** — a clean campaign run without an
  integrity ledger (the default) builds none of the machinery: no
  ledger, no integrity spans, no digest arithmetic on the chunk path
  (bit-identity with the pre-integrity trace is the tier-1 golden
  gate; this bench checks the structural half);
* **enabled verification is cheap** — the same 800-chunk stream
  delivery with per-chunk digests costs < 10% extra wall-clock;
* **the audit closes** — a full corruption campaign ends with every
  injected fault repaired or quarantined, zero silent acceptances.
"""

from __future__ import annotations

import time

from repro.bench import _stream_delivery_with_digests
from repro.core import run_campaign
from repro.integrity import format_audit, run_integrity_campaign
from repro.obs import derive_integrity_events

from conftest import report

DURATION = 1800.0


def _best_wall(fn, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_integrity_disabled_is_free(benchmark, output_dir):
    result = benchmark(
        lambda: run_campaign(
            "hyperspectral",
            duration_s=DURATION,
            seed=1,
            ingest="stream",
            obs=True,
        )
    )
    events = derive_integrity_events(result.testbed.obs.tracer.spans)
    lines = [
        f"ledger constructed: {result.ledger is not None}",
        "integrity spans: "
        + ", ".join(f"{k}={len(v)}" for k, v in sorted(events.items())),
        f"sessions delivered: "
        f"{sum(1 for s in result.app.sessions if s.status == 'PUBLISHED')}"
        f"/{len(result.app.sessions)}",
    ]
    report("bench_integrity_disabled", lines, output_dir)
    # No ledger, no spans, no failure events: the disabled path is the
    # pre-integrity path (bit-identity itself is the tier-1 golden gate).
    assert result.ledger is None
    assert all(len(v) == 0 for v in events.values())
    assert all(s.failed is None for s in result.app.sessions)


def test_integrity_stream_overhead(benchmark, output_dir):
    plain_fn = _stream_delivery_with_digests(50, 16, verified=False)
    verified_fn = _stream_delivery_with_digests(50, 16, verified=True)
    # Warm-up outside the timed region.
    plain_fn()
    verified_fn()

    plain = _best_wall(plain_fn)
    verified = _best_wall(verified_fn)
    benchmark(verified_fn)

    overhead = 100.0 * (verified - plain) / plain
    lines = [
        f"plain delivery (800 chunks):    {plain * 1e3:.1f} ms (best of 5)",
        f"verified delivery (800 chunks): {verified * 1e3:.1f} ms (best of 5)",
        f"per-chunk digest overhead: {overhead:+.1f}%",
    ]
    report("bench_integrity_overhead", lines, output_dir)
    # The ISSUE gate: verification on the hot chunk path stays under
    # 10% of plain delivery cost.
    assert verified < plain * 1.10


def test_corruption_campaign_audit(benchmark, output_dir):
    result, audit = benchmark.pedantic(
        lambda: run_integrity_campaign(
            duration_s=DURATION, seed=5, ingest="stream"
        ),
        rounds=1,
        iterations=1,
    )
    sessions = result.app.sessions
    lines = [
        f"sessions: {len(sessions)}  "
        f"published: {sum(1 for s in sessions if s.status == 'PUBLISHED')}  "
        f"quarantined: {len(result.ledger.quarantined)}",
        *format_audit(audit).splitlines(),
    ]
    report("bench_integrity_audit", lines, output_dir)
    assert audit.ok  # zero silent acceptances, no publish violations
    assert audit.counts["injections"] > 0  # the scenario actually fired
