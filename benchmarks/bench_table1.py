"""Table 1: aggregate statistics of the two 1-hour campaigns.

Regenerates both columns of Table 1 on the calibrated testbed and checks
every shape relationship the paper's numbers encode.  The benchmark
timing itself measures how fast the DES executes a full 1-hour campaign.
"""

from __future__ import annotations

import pytest

from repro.core import render_table1, run_campaign

from conftest import PAPER_TABLE1, report


def _run_both(seed_h=1, seed_s=2):
    hyper = run_campaign("hyperspectral", seed=seed_h)
    spatio = run_campaign("spatiotemporal", seed=seed_s)
    return hyper, spatio


def test_table1_campaigns(benchmark, output_dir):
    hyper, spatio = benchmark(_run_both)
    rows = {r.use_case: r for r in (hyper.table1(), spatio.table1())}

    lines = [render_table1(list(rows.values())), "", "paper vs measured:"]
    for name, row in rows.items():
        paper = PAPER_TABLE1[name]
        m = {
            "start_period_s": row.start_period_s,
            "transfer_volume_mb": row.transfer_volume_mb,
            "total_data_gb": row.total_data_gb,
            "min_runtime_s": row.min_runtime_s,
            "mean_runtime_s": row.mean_runtime_s,
            "max_runtime_s": row.max_runtime_s,
            "median_overhead_s": row.median_overhead_s,
            "median_overhead_pct": row.median_overhead_pct,
            "total_runs": row.total_runs,
        }
        lines.append(f"  {name}:")
        for k, pv in paper.items():
            lines.append(f"    {k:<22s} paper {pv:>8}  measured {m[k]:>10.2f}")
    report("table1", lines, output_dir)

    h, s = rows["hyperspectral"], rows["spatiotemporal"]
    # Configured inputs reproduced exactly.
    assert h.start_period_s == 30 and s.start_period_s == 120
    assert h.transfer_volume_mb == 91 and s.transfer_volume_mb == 1200
    # Run counts: ~72 vs ~18, ratio ≈ 4x.
    assert 55 <= h.total_runs <= 95
    assert 12 <= s.total_runs <= 24
    assert 3.0 < h.total_runs / s.total_runs < 7.0
    # Mean runtimes: ~47 s vs ~224 s.
    assert 35 <= h.mean_runtime_s <= 60
    assert 180 <= s.mean_runtime_s <= 260
    # Total data: spatiotemporal moves ~3x more despite ~4x fewer runs.
    assert s.total_data_gb > 2 * h.total_data_gb
    assert abs(h.total_data_gb - PAPER_TABLE1["hyperspectral"]["total_data_gb"]) < 3
    # Overhead: dominates the short flow (≈49%), not the long one (≈21%).
    assert 35 <= h.median_overhead_pct <= 65
    assert 10 <= s.median_overhead_pct <= 30
    assert h.median_overhead_pct > s.median_overhead_pct + 15
    # Max runtimes come from cold starts: max ≫ mean for both.
    assert h.max_runtime_s > 2 * h.mean_runtime_s
    assert s.max_runtime_s > s.mean_runtime_s


def test_table1_gating_inference(benchmark, output_dir):
    """DESIGN.md's campaign-gating inference: gated pacing reproduces the
    paper's completed-run counts; strict-periodic pacing would not."""

    def run_periodic():
        return run_campaign("hyperspectral", seed=1, copier_mode="periodic")

    res = benchmark(run_periodic)
    gated = run_campaign("hyperspectral", seed=1, copier_mode="gated")
    lines = [
        f"strict 30 s period : {len(res.completed_runs)} completed flows "
        f"(files emitted: {len(res.copier.emitted)})",
        f"gated (paper mode) : {len(gated.completed_runs)} completed flows",
        f"paper              : 72",
    ]
    report("table1_gating", lines, output_dir)
    # Periodic emits 120 files/hour; gated completes ≈ 3600/mean ≈ 75.
    assert len(res.copier.emitted) == 120
    assert abs(len(gated.completed_runs) - 72) <= 20
    assert len(res.completed_runs) > len(gated.completed_runs)
