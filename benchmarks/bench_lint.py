"""Static-analyzer throughput: cold parse+analyze vs. warm cache.

Not a paper figure — ``repro.lint`` runs in CI on every change, so its
wall time is developer-facing latency.  The warm benchmarks double as
correctness checks: they assert the cache-hit statistics, proving the
incremental cache re-analyzes exactly the changed files.
"""

from __future__ import annotations

import os
import shutil

import repro
from repro.lint import Analyzer, LintCache

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def test_lint_cold_full_tree(benchmark):
    """Fresh analyzer, no cache: parse + CFG + all rules on every file."""

    def run():
        analyzer = Analyzer()
        analyzer.lint_paths([PACKAGE_DIR])
        return analyzer.stats.files_total

    n_files = benchmark(run)
    assert n_files > 60


def test_lint_warm_cache_full_tree(benchmark, tmp_path):
    """Fully warm cache: every file served from the content-hash cache."""
    cache_path = str(tmp_path / "cache.json")
    primer = Analyzer()
    cache = LintCache(cache_path)
    primer.lint_paths([PACKAGE_DIR], cache=cache)
    cache.save()

    def run():
        analyzer = Analyzer()
        analyzer.lint_paths([PACKAGE_DIR], cache=LintCache(cache_path))
        return analyzer.stats

    stats = benchmark(run)
    assert stats.files_cached == stats.files_total
    assert stats.files_analyzed == 0
    # unchanged bytes: every taint summary served from the cache
    assert stats.taint_recomputed == 0


def test_lint_warm_one_file_changed(benchmark, tmp_path):
    """One file touched: exactly one cache miss, everything else cached."""
    work = str(tmp_path / "repro")
    shutil.copytree(
        PACKAGE_DIR, work, ignore=shutil.ignore_patterns("__pycache__")
    )
    cache_path = str(tmp_path / "cache.json")
    primer = Analyzer()
    cache = LintCache(cache_path)
    primer.lint_paths([work], cache=cache)
    cache.save()
    victim = os.path.join(work, "units.py")
    tick = [0]

    def run():
        tick[0] += 1
        with open(victim, "a", encoding="utf-8") as fh:
            fh.write(f"# bench touch {tick[0]}\n")
        analyzer = Analyzer()
        c = LintCache(cache_path)
        analyzer.lint_paths([work], cache=c)
        c.save()
        return analyzer.stats

    stats = benchmark(run)
    assert stats.files_analyzed == 1
    assert stats.files_cached == stats.files_total - 1
    # taint re-analysis is limited to exactly the changed file
    assert stats.taint_recomputed == 1


def test_lint_taint_index_cold(benchmark):
    """The taint phase alone: per-module local dataflow plus the global
    RET/SINKPARAM fixpoints, no summary cache."""
    import ast

    from repro.lint.callgraph import module_name_for_path
    from repro.lint.taint import build_taint_index

    trees = {}
    for dirpath, dirnames, filenames in os.walk(PACKAGE_DIR):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            p = os.path.join(dirpath, name)
            with open(p, "r", encoding="utf-8") as fh:
                trees[p] = (module_name_for_path(p), ast.parse(fh.read()))

    def run():
        return build_taint_index(trees)

    index = benchmark(run)
    assert index.recomputed == len(trees)
    assert len(index.functions) > 200
